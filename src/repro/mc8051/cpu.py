"""Structural RTL model of the 8051-subset microcontroller.

The design mirrors the unit decomposition the paper injects into
(section 6.1): *registers* (REG), *RAM memory* (the IRAM block), the
*arithmetic logic unit* (ALU), the *memory control* unit (MEM) and the
*finite state machine* / decoder (FSM).  Every piece of emitted logic is
tagged with its unit so the fault-location process can build the same
per-unit experiments.

Microarchitecture: a multi-cycle accumulator machine with the fixed state
walk::

    0 FETCH   issue ROM read at PC, PC += 1
    1 DECODE  latch IR, decode; issue OP1 read when length >= 2
    2 OP1     latch OP1; issue OP2 read when length == 3
    3 OP2     latch OP2
    4 AGEN    compute the operand address, issue the IRAM read
    5 IND2    (indirect only) latch the pointer, issue the final read
    6 EXEC    ALU, flags, ACC/branch updates, latch RES
    7 WRITE   commit RES to IRAM or an SFR

Both memories are synchronous (registered reads), exactly matching the
embedded memory blocks of the FPGA substrate, so the synthesised model is
cycle-identical to this description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import WorkloadError
from ..hdl.netlist import Netlist
from ..hdl.rtl import Rtl, Word
from . import isa
from .iss import IRAM_SIZE, ROM_SIZE

#: State encoding of the control FSM.
(S_FETCH, S_DECODE, S_OP1, S_OP2, S_AGEN, S_IND, S_EXEC, S_WRITE,
 S_WRITE2) = range(9)

#: SFR registers implemented as flip-flop banks (address, register name).
SFR_REGS: Tuple[Tuple[int, str], ...] = (
    (isa.SFR_P0, "p0"),
    (isa.SFR_SP, "sp"),
    (isa.SFR_DPL, "dpl"),
    (isa.SFR_DPH, "dph"),
    (isa.SFR_P1, "p1"),
    (isa.SFR_P2, "p2"),
    (isa.SFR_B, "b"),
)


@dataclass
class Mc8051Model:
    """The elaborated microcontroller plus its model-level metadata."""

    netlist: Netlist
    rom_bytes: bytes
    iram_name: str = "iram"
    rom_name: str = "rom"
    output_names: Tuple[str, ...] = ("p1_out", "p2_out")
    #: Registers the register-file fault experiments draw from.
    register_signals: Tuple[str, ...] = (
        "acc", "b", "psw_flags", "sp", "dpl", "dph", "p1", "p2",
        "pc", "ir", "op1", "op2", "res", "mar", "state")


def _control_field(rtl: Rtl, word: Word, lo: int, width: int) -> Word:
    return rtl.bits(word, lo, width)


def build_mc8051(rom: bytes) -> Mc8051Model:
    """Elaborate the microcontroller around a program ROM image."""
    if len(rom) > ROM_SIZE:
        raise WorkloadError(
            f"program of {len(rom)} bytes exceeds the {ROM_SIZE}-byte ROM")
    rtl = Rtl("mc8051")

    # ---------------- memories -------------------------------------------
    with rtl.unit("ROM"):
        rom_mem = rtl.memory("rom", depth=ROM_SIZE, width=8,
                             init=list(rom), rom=True)
    with rtl.unit("RAM"):
        iram = rtl.memory("iram", depth=IRAM_SIZE, width=8)

    # ---------------- registers -------------------------------------------
    with rtl.unit("REG"):
        pc = rtl.register("pc", 12)
        ir = rtl.register("ir", 8)
        op1 = rtl.register("op1", 8)
        op2 = rtl.register("op2", 8)
        res = rtl.register("res", 8)
        res2 = rtl.register("res2", 8)  # high return-address byte (LCALL)
        acc = rtl.register("acc", 8)
        cy = rtl.register("cy", 1)
        ac = rtl.register("ac_flag", 1)
        ov = rtl.register("ov", 1)
        f0 = rtl.register("f0", 1)
        rs = rtl.register("rs", 2)
        sfr_regs: Dict[str, object] = {
            name: rtl.register(name, 8, init=(0x07 if name == "sp" else 0))
            for _addr, name in SFR_REGS}
    with rtl.unit("MEM"):
        mar = rtl.register("mar", 7)
    with rtl.unit("FSM"):
        state = rtl.register("state", 4, init=S_FETCH)

    # ---------------- decode ---------------------------------------------
    with rtl.unit("FSM"):
        st = [rtl.eq(state.q, rtl.const(k, 4)) for k in range(9)]
        dec_in = rtl.mux(st[S_DECODE], ir.q, rom_mem.rdata)
        control = rtl.table(
            dec_in, isa.CONTROL_WIDTH,
            lambda opcode: isa.spec_for(opcode).control_word())
        len_m1 = _control_field(rtl, control, 0, 2)
        agen = _control_field(rtl, control, 2, 2)
        aluop = _control_field(rtl, control, 4, 4)
        asrc = _control_field(rtl, control, 8, 1)
        bsrc = _control_field(rtl, control, 9, 2)
        dest = _control_field(rtl, control, 11, 2)
        branch = _control_field(rtl, control, 13, 4)
        flags = _control_field(rtl, control, 17, 3)
        xch = _control_field(rtl, control, 20, 1)
        stack = _control_field(rtl, control, 21, 3)
        is_push = rtl.eq(stack, rtl.const(isa.STACK_PUSH, 3))
        is_pop = rtl.eq(stack, rtl.const(isa.STACK_POP, 3))
        is_call = rtl.eq(stack, rtl.const(isa.STACK_CALL, 3))
        is_ret = rtl.eq(stack, rtl.const(isa.STACK_RET, 3))
        ext = _control_field(rtl, control, 24, 2)
        is_movc = rtl.eq(ext, rtl.const(isa.EXT_MOVC, 2))
        is_dptr_load = rtl.eq(ext, rtl.const(isa.EXT_DPTR_LOAD, 2))
        is_dptr_inc = rtl.eq(ext, rtl.const(isa.EXT_DPTR_INC, 2))

        len_ge2 = rtl.reduce_or(len_m1)
        len_eq3 = rtl.bit(len_m1, 1)
        agen_none = rtl.eq(agen, rtl.const(isa.AGEN_NONE, 2))
        agen_ind = rtl.eq(agen, rtl.const(isa.AGEN_IND, 2))
        agen_dir = rtl.eq(agen, rtl.const(isa.AGEN_DIR, 2))
        dest_acc = rtl.eq(dest, rtl.const(isa.DEST_ACC, 2))
        dest_mem = rtl.eq(dest, rtl.const(isa.DEST_MEM, 2))

        after_ops = rtl.mux(agen_none, rtl.const(S_AGEN, 4),
                            rtl.const(S_EXEC, 4))
        next_state = rtl.select(state.q, [
            rtl.const(S_DECODE, 4),
            rtl.mux(len_ge2, after_ops, rtl.const(S_OP1, 4)),
            rtl.mux(len_eq3, after_ops, rtl.const(S_OP2, 4)),
            after_ops,
            rtl.mux(agen_ind, rtl.const(S_EXEC, 4), rtl.const(S_IND, 4)),
            rtl.const(S_EXEC, 4),
            rtl.mux(dest_mem, rtl.const(S_FETCH, 4), rtl.const(S_WRITE, 4)),
            rtl.mux(is_call, rtl.const(S_FETCH, 4),
                    rtl.const(S_WRITE2, 4)),
            rtl.const(S_FETCH, 4),
        ], default=rtl.const(S_FETCH, 4))
        state.drive(next_state)

    # ---------------- memory control ---------------------------------------
    with rtl.unit("MEM"):
        # Operand address generation (current register bank from RS bits).
        reg_addr = rtl.cat(rtl.bits(ir.q, 0, 3), rs.q, rtl.const(0, 2))
        ind_ptr_addr = rtl.cat(rtl.bit(ir.q, 0), rtl.const(0, 2), rs.q,
                               rtl.const(0, 2))
        dir_addr = rtl.bits(op1.q, 0, 7)
        agen_addr = rtl.select(agen, [dir_addr, reg_addr, ind_ptr_addr,
                                      dir_addr])
        sp_reg = sfr_regs["sp"]
        sp_low = rtl.bits(sp_reg.q, 0, 7)
        sp_minus1_low = rtl.bits(rtl.dec(sp_reg.q), 0, 7)
        # POP and RET read from the stack pointer, not the operand field;
        # RET's second read (S_IND) fetches the low return-address byte.
        agen_addr = rtl.mux(rtl.or_(is_pop, is_ret), agen_addr, sp_low)
        ind_next_addr = rtl.mux(is_ret, rtl.bits(iram.rdata, 0, 7),
                                sp_minus1_low)
        iram_raddr = rtl.mux(st[S_IND], agen_addr, ind_next_addr)
        mar_next = iram_raddr
        mar.drive(mar_next, en=rtl.or_(st[S_AGEN], st[S_IND]))

        sfr_access = rtl.and_(agen_dir, rtl.bit(op1.q, 7))
        # A POP's *read* always comes from IRAM (the stack), even when its
        # destination is an SFR; PUSH/LCALL *writes* always go to IRAM.
        sfr_tmp_read = rtl.and_(sfr_access, rtl.not_(is_pop))
        sfr_dest = rtl.and_(sfr_access,
                            rtl.not_(rtl.or_(is_push, is_call)))

        # PSW is assembled on read; P is combinational parity of ACC.
        parity_bit = rtl.reduce_xor(acc.q)
        psw_read = rtl.cat(parity_bit, rtl.const(0, 1), ov.q, rs.q, f0.q,
                           ac.q, cy.q)
        rtl.signal("psw_flags", rtl.cat(cy.q, ac.q, ov.q, f0.q, rs.q))

        tmp_sfr = rtl.const(0, 8)
        for addr, name in SFR_REGS:
            tmp_sfr = rtl.mux(rtl.eq(op1.q, rtl.const(addr, 8)),
                              tmp_sfr, sfr_regs[name].q)
        tmp_sfr = rtl.mux(rtl.eq(op1.q, rtl.const(isa.SFR_PSW, 8)),
                          tmp_sfr, psw_read)
        tmp_sfr = rtl.mux(rtl.eq(op1.q, rtl.const(isa.SFR_ACC, 8)),
                          tmp_sfr, acc.q)
        tmp_val = rtl.mux(sfr_tmp_read, iram.rdata, tmp_sfr)
        # MOVC A,@A+DPTR: the operand comes from code memory; the ROM
        # read at DPTR+A was issued during the AGEN state.
        tmp_val = rtl.mux(is_movc, tmp_val, rom_mem.rdata)
        rtl.signal("operand_bus", tmp_val)

    # ---------------- ALU ---------------------------------------------------
    with rtl.unit("ALU"):
        a_side = rtl.mux(asrc, acc.q, tmp_val)
        b_side = rtl.select(bsrc, [tmp_val, op1.q, op2.q, tmp_val])

        is_subb = rtl.eq(aluop, rtl.const(isa.ALU_SUBB, 4))
        is_cmp = rtl.eq(aluop, rtl.const(isa.ALU_CMP, 4))
        is_inc = rtl.eq(aluop, rtl.const(isa.ALU_INC, 4))
        is_dec = rtl.eq(aluop, rtl.const(isa.ALU_DEC, 4))
        is_addc = rtl.eq(aluop, rtl.const(isa.ALU_ADDC, 4))
        sub_like = rtl.or_(is_subb, is_cmp)

        # Adder operand B: b (ADD/ADDC), ~b (SUBB/CMP), 0 (INC), 0xFF (DEC).
        b_eff = rtl.mux(sub_like, b_side, rtl.not_(b_side))
        b_eff = rtl.mux(is_inc, b_eff, rtl.const(0x00, 8))
        b_eff = rtl.mux(is_dec, b_eff, rtl.const(0xFF, 8))
        # Carry in: 0 (ADD/DEC), CY (ADDC), ~CY (SUBB), 1 (CMP/INC).
        cin = rtl.mux(is_subb, rtl.const(0, 1), rtl.not_(cy.q))
        cin = rtl.mux(is_addc, cin, cy.q)
        cin = rtl.mux(rtl.or_(is_cmp, is_inc), cin, rtl.const(1, 1))

        # Explicit ripple chain to expose the internal carries (AC, OV).
        carries: List[Word] = [cin]
        sum_bits: List[int] = []
        carry = cin
        for position in range(8):
            abit = rtl.bit(a_side, position)
            bbit = rtl.bit(b_eff, position)
            prop = rtl.xor_(abit, bbit)
            sum_bits.append(rtl.xor_(prop, carry).nets[0])
            carry = rtl.or_(rtl.and_(abit, bbit), rtl.and_(prop, carry))
            carries.append(carry)
        adder_out = Word(sum_bits)
        c4, c7, c8 = carries[4], carries[7], carries[8]
        cy_adder = rtl.mux(sub_like, c8, rtl.not_(c8))
        ac_adder = rtl.mux(sub_like, c4, rtl.not_(c4))
        ov_adder = rtl.xor_(c7, c8)

        rl_word = rtl.cat(rtl.bit(acc.q, 7), rtl.bits(acc.q, 0, 7))
        rr_word = rtl.cat(rtl.bits(acc.q, 1, 7), rtl.bit(acc.q, 0))
        alu_res = rtl.select(aluop, [
            b_side,                      # PASSB
            a_side,                      # PASSA
            adder_out,                   # ADD
            adder_out,                   # SUBB
            rtl.and_(a_side, b_side),    # AND
            rtl.or_(a_side, b_side),     # OR
            rtl.xor_(a_side, b_side),    # XOR
            adder_out,                   # INC
            adder_out,                   # DEC
            rtl.not_(acc.q),             # CPL
            rtl.const(0, 8),             # CLR
            rl_word,                     # RL
            rr_word,                     # RR
            adder_out,                   # CMP
            adder_out,                   # ADDC
        ], default=rtl.const(0, 8))
        rtl.signal("alu_result", alu_res)

        res_zero = rtl.is_zero(alu_res)
        acc_zero = rtl.is_zero(acc.q)

    # ---------------- branches (FSM unit) -----------------------------------
    with rtl.unit("FSM"):
        take = rtl.select(branch, [
            rtl.const(0, 1),                       # NONE
            cy.q,                                  # JC
            rtl.not_(cy.q),                        # JNC
            acc_zero,                              # JZ
            rtl.not_(acc_zero),                    # JNZ
            rtl.const(1, 1),                       # SJMP
            rtl.const(1, 1),                       # LJMP
            rtl.not_(res_zero),                    # CJNE
            rtl.not_(res_zero),                    # DJNZ
            rtl.const(1, 1),                       # RET
        ], default=rtl.const(0, 1))
        rel = rtl.mux(len_eq3, op1.q, op2.q)
        rel12 = rtl.cat(rel, rtl.repeat(rtl.bit(rel, 7), 4))
        target_rel, _carry = rtl.add(pc.q, rel12)
        target_ljmp = rtl.cat(op2.q, rtl.bits(op1.q, 0, 4))
        is_ljmp = rtl.eq(branch, rtl.const(isa.BR_LJMP, 4))
        is_bret = rtl.eq(branch, rtl.const(isa.BR_RET, 4))
        # RET: low byte arrives on the IRAM read port during EXEC, the
        # high nibble was latched into OP1 at the IND2 state.
        target_ret = rtl.cat(iram.rdata, rtl.bits(op1.q, 0, 4))
        branch_target = rtl.mux(is_ljmp, target_rel, target_ljmp)
        branch_target = rtl.mux(is_bret, branch_target, target_ret)

        pc_plus1 = rtl.inc(pc.q)
        pc_step = rtl.or_(st[S_FETCH],
                          rtl.or_(rtl.and_(st[S_DECODE], len_ge2),
                                  rtl.and_(st[S_OP1], len_eq3)))
        pc_next = rtl.mux(pc_step, pc.q, pc_plus1)
        do_branch = rtl.and_(st[S_EXEC], take)
        pc_next = rtl.mux(do_branch, pc_next, branch_target)
        pc.drive(pc_next)

    # ---------------- register updates ---------------------------------------
    with rtl.unit("REG"):
        ir.drive(rom_mem.rdata, en=st[S_DECODE])
        op1_next = rtl.mux(st[S_IND], rom_mem.rdata, iram.rdata)
        op1.drive(op1_next, en=rtl.or_(st[S_OP1],
                                       rtl.and_(st[S_IND], is_ret)))
        op2.drive(rom_mem.rdata, en=st[S_OP2])
        # LCALL stores the return address (the not-yet-branched PC) in the
        # RES/RES2 pair for the two stack writes.
        res_next = rtl.mux(is_call, alu_res, rtl.bits(pc.q, 0, 8))
        res.drive(res_next, en=st[S_EXEC])
        res2.drive(rtl.zext(rtl.bits(pc.q, 8, 4), 8), en=st[S_EXEC])

        sfr_write = rtl.and_(rtl.and_(st[S_WRITE], dest_mem), sfr_dest)

        acc_load_exec = rtl.and_(st[S_EXEC],
                                 rtl.or_(dest_acc, rtl.bit(xch, 0)))
        acc_sfr_write = rtl.and_(sfr_write,
                                 rtl.eq(op1.q, rtl.const(isa.SFR_ACC, 8)))
        acc_next = rtl.mux(rtl.bit(xch, 0), alu_res, tmp_val)
        acc_next = rtl.mux(acc_sfr_write, acc_next, res.q)
        acc.drive(acc_next, en=rtl.or_(acc_load_exec, acc_sfr_write))

        psw_sfr_write = rtl.and_(sfr_write,
                                 rtl.eq(op1.q, rtl.const(isa.SFR_PSW, 8)))
        flags_exec = st[S_EXEC]
        cy_policy = rtl.select(flags, [
            cy.q,                        # NONE
            cy_adder,                    # ARITH
            rtl.const(0, 1),             # CY0
            rtl.const(1, 1),             # CY1
            rtl.not_(cy.q),              # CYCPL
            cy_adder,                    # CMP
        ], default=cy.q)
        cy_next = rtl.mux(flags_exec, cy.q, cy_policy)
        cy_next = rtl.mux(psw_sfr_write, cy_next,
                          rtl.bit(res.q, isa.PSW_CY))
        cy.drive(cy_next)

        is_arith = rtl.eq(flags, rtl.const(isa.FLAG_ARITH, 3))
        ac_next = rtl.mux(rtl.and_(flags_exec, is_arith), ac.q, ac_adder)
        ac_next = rtl.mux(psw_sfr_write, ac_next,
                          rtl.bit(res.q, isa.PSW_AC))
        ac.drive(ac_next)
        ov_next = rtl.mux(rtl.and_(flags_exec, is_arith), ov.q, ov_adder)
        ov_next = rtl.mux(psw_sfr_write, ov_next,
                          rtl.bit(res.q, isa.PSW_OV))
        ov.drive(ov_next)
        f0.drive(rtl.bit(res.q, isa.PSW_F0), en=psw_sfr_write)
        rs.drive(rtl.bits(res.q, isa.PSW_RS0, 2), en=psw_sfr_write)

        sp_sfr_en = rtl.and_(sfr_write,
                             rtl.eq(op1.q, rtl.const(isa.SFR_SP, 8)))
        sp_q = sfr_regs["sp"].q
        sp_stacked = rtl.select(stack, [
            sp_q,                          # NONE
            rtl.inc(sp_q),                 # PUSH
            rtl.dec(sp_q),                 # POP
            rtl.inc(rtl.inc(sp_q)),        # CALL
            rtl.dec(rtl.dec(sp_q)),        # RET
        ], default=sp_q)
        sp_next = rtl.mux(st[S_EXEC], sp_q, sp_stacked)
        sp_next = rtl.mux(sp_sfr_en, sp_next, res.q)
        sfr_regs["sp"].drive(sp_next)

        dpl_reg, dph_reg = sfr_regs["dpl"], sfr_regs["dph"]
        dpl_sfr_en = rtl.and_(sfr_write,
                              rtl.eq(op1.q, rtl.const(isa.SFR_DPL, 8)))
        dph_sfr_en = rtl.and_(sfr_write,
                              rtl.eq(op1.q, rtl.const(isa.SFR_DPH, 8)))
        dptr_exec = rtl.and_(st[S_EXEC], rtl.or_(is_dptr_load, is_dptr_inc))
        dpl_inc = rtl.inc(dpl_reg.q)
        dpl_wraps = rtl.eq(dpl_reg.q, rtl.const(0xFF, 8))
        dph_inc = rtl.mux(dpl_wraps, dph_reg.q, rtl.inc(dph_reg.q))
        # MOV DPTR,#imm16 carries the high byte in OP1, the low in OP2.
        dpl_exec_val = rtl.mux(is_dptr_load, dpl_inc, op2.q)
        dph_exec_val = rtl.mux(is_dptr_load, dph_inc, op1.q)
        dpl_next = rtl.mux(dptr_exec, dpl_reg.q, dpl_exec_val)
        dpl_next = rtl.mux(dpl_sfr_en, dpl_next, res.q)
        dpl_reg.drive(dpl_next)
        dph_next = rtl.mux(dptr_exec, dph_reg.q, dph_exec_val)
        dph_next = rtl.mux(dph_sfr_en, dph_next, res.q)
        dph_reg.drive(dph_next)

        for addr, name in SFR_REGS:
            if name in ("sp", "dpl", "dph"):
                continue
            enable = rtl.and_(sfr_write,
                              rtl.eq(op1.q, rtl.const(addr, 8)))
            sfr_regs[name].drive(res.q, en=enable)

    # ---------------- memory ports -----------------------------------------
    with rtl.unit("MEM"):
        dptr12 = rtl.cat(sfr_regs["dpl"].q, rtl.bits(sfr_regs["dph"].q,
                                                     0, 4))
        code_addr, _cc = rtl.add(dptr12, rtl.zext(acc.q, 12))
        rom_raddr = rtl.mux(rtl.and_(st[S_AGEN], is_movc),
                            rtl.bits(pc.q, 0, 9),
                            rtl.bits(code_addr, 0, 9))
        rom_mem.connect(raddr=rom_raddr)
        iram_we = rtl.and_(rtl.and_(st[S_WRITE], dest_mem),
                           rtl.not_(sfr_dest))
        iram_we = rtl.or_(iram_we, st[S_WRITE2])
        # Stack writes address through SP (already updated at EXEC):
        # PUSH -> mem[SP]; LCALL -> mem[SP-1] then mem[SP]; POP's write
        # goes to the direct operand address.
        waddr = rtl.mux(is_push, mar.q, sp_low)
        waddr = rtl.mux(is_pop, waddr, dir_addr)
        waddr = rtl.mux(rtl.and_(is_call, st[S_WRITE]), waddr,
                        sp_minus1_low)
        waddr = rtl.mux(rtl.and_(is_call, st[S_WRITE2]), waddr, sp_low)
        wdata = rtl.mux(st[S_WRITE2], res.q, res2.q)
        iram.connect(raddr=iram_raddr, waddr=waddr, wdata=wdata, we=iram_we)

    # ---------------- observation ------------------------------------------
    rtl.output("p1_out", sfr_regs["p1"].q)
    rtl.output("p2_out", sfr_regs["p2"].q)

    netlist = rtl.build()
    return Mc8051Model(netlist=netlist, rom_bytes=bytes(rom))
