"""Instruction-set definition of the 8051-subset target model.

The paper's system under study is an Intel 8051 IP core.  This module
defines the subset we implement — some forty opcodes with authentic 8051
encodings, covering every addressing mode the Bubblesort workload and the
other shipped programs use: register, register-indirect, direct (including
SFRs) and immediate, plus the conditional/unconditional branches.

Each opcode maps to an :class:`InstrSpec` whose fields are exactly the
control-word fields the RTL decoder emits, so the assembler, the reference
ISS and the hardware model all share one source of truth.

Execution follows a fixed multi-cycle state walk (see
:mod:`repro.mc8051.cpu`)::

    FETCH -> DECODE [-> OP1] [-> OP2] [-> AGEN [-> IND2]] -> EXEC [-> WRITE]

so an instruction's cycle count is fully determined by its spec
(:meth:`InstrSpec.cycles`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

# Addressing/"address generation" modes -----------------------------------
AGEN_NONE = 0   # no memory operand (immediate or none)
AGEN_REG = 1    # Rn (current bank)
AGEN_IND = 2    # @Ri (pointer read, then operand access)
AGEN_DIR = 3    # direct address (IRAM below 0x80, SFRs above)

# ALU operations -----------------------------------------------------------
ALU_PASSB = 0   # result = B operand (MOV-style)
ALU_PASSA = 1   # result = A operand (store ACC / XCH)
ALU_ADD = 2
ALU_SUBB = 3
ALU_AND = 4
ALU_OR = 5
ALU_XOR = 6
ALU_INC = 7
ALU_DEC = 8
ALU_CPL = 9
ALU_CLR = 10
ALU_RL = 11
ALU_RR = 12
ALU_CMP = 13    # compare (CJNE): sets borrow, result only tested for zero
ALU_ADDC = 14   # add with carry in

# Stack operations (dedicated datapath/state behaviour) ----------------------
STACK_NONE = 0
STACK_PUSH = 1  # SP += 1; mem[SP] = operand
STACK_POP = 2   # result = mem[SP]; SP -= 1
STACK_CALL = 3  # push both PC bytes, then jump (LCALL)
STACK_RET = 4   # pop both PC bytes into PC (RET)

# Extended datapath operations (DPTR / code memory) ---------------------------
EXT_NONE = 0
EXT_MOVC = 1       # operand = code[DPTR + A] (MOVC A,@A+DPTR)
EXT_DPTR_LOAD = 2  # DPTR = #imm16 (MOV DPTR,#imm16)
EXT_DPTR_INC = 3   # DPTR += 1 (INC DPTR)

# A-side operand -----------------------------------------------------------
ASRC_ACC = 0
ASRC_TMP = 1    # the fetched memory operand

# B-side operand -----------------------------------------------------------
BSRC_TMP = 0
BSRC_OP1 = 1
BSRC_OP2 = 2

# Result destination -------------------------------------------------------
DEST_NONE = 0
DEST_ACC = 1
DEST_MEM = 2    # IRAM at the generated address, or an SFR for DIR >= 0x80

# Branch kinds --------------------------------------------------------------
BR_NONE = 0
BR_JC = 1
BR_JNC = 2
BR_JZ = 3
BR_JNZ = 4
BR_SJMP = 5
BR_LJMP = 6
BR_CJNE = 7
BR_DJNZ = 8
BR_RET = 9

# Flag-update policies -------------------------------------------------------
FLAG_NONE = 0
FLAG_ARITH = 1  # CY, AC, OV from the adder
FLAG_CY0 = 2    # CLR C
FLAG_CY1 = 3    # SETB C
FLAG_CYCPL = 4  # CPL C
FLAG_CMP = 5    # CY only (CJNE)

# SFR addresses (direct space >= 0x80) ---------------------------------------
SFR_P0 = 0x80
SFR_SP = 0x81
SFR_DPL = 0x82
SFR_DPH = 0x83
SFR_P1 = 0x90
SFR_P2 = 0xA0
SFR_PSW = 0xD0
SFR_ACC = 0xE0
SFR_B = 0xF0

# PSW bit positions.
PSW_P = 0
PSW_OV = 2
PSW_RS0 = 3
PSW_RS1 = 4
PSW_F0 = 5
PSW_AC = 6
PSW_CY = 7


@dataclass(frozen=True)
class InstrSpec:
    """Decoded behaviour of one opcode."""

    mnemonic: str
    fmt: str            # operand format for the assembler/disassembler
    length: int         # total bytes including the opcode
    agen: int = AGEN_NONE
    aluop: int = ALU_PASSB
    asrc: int = ASRC_ACC
    bsrc: int = BSRC_TMP
    dest: int = DEST_NONE
    branch: int = BR_NONE
    flags: int = FLAG_NONE
    xch: bool = False   # also load ACC with the memory operand (XCH)
    stack: int = STACK_NONE
    ext: int = EXT_NONE

    def cycles(self) -> int:
        """Exact cycle count of the fixed state walk."""
        count = 2                      # FETCH + DECODE
        count += self.length - 1       # OP1/OP2 fetch states
        if self.agen != AGEN_NONE:
            count += 1                 # AGEN (or first stack read)
        if self.agen == AGEN_IND:
            count += 1                 # IND2 (pointer/second stack read)
        count += 1                     # EXEC
        if self.dest == DEST_MEM:
            count += 1                 # WRITE
        if self.stack == STACK_CALL:
            count += 1                 # WRITE2 (second return-address byte)
        return count

    def control_word(self) -> int:
        """Pack the spec into the control word the decoder emits."""
        return ((self.length - 1)
                | (self.agen << 2)
                | (self.aluop << 4)
                | (self.asrc << 8)
                | (self.bsrc << 9)
                | (self.dest << 11)
                | (self.branch << 13)
                | (self.flags << 17)
                | (int(self.xch) << 20)
                | (self.stack << 21)
                | (self.ext << 24))


#: Width of the packed control word in bits.
CONTROL_WIDTH = 26


def _build_opcodes() -> Dict[int, InstrSpec]:
    ops: Dict[int, InstrSpec] = {}

    def op(code: int, spec: InstrSpec) -> None:
        if code in ops:
            raise ValueError(f"opcode {code:#04x} defined twice")
        ops[code] = spec

    op(0x00, InstrSpec("NOP", "", 1))

    # MOV -----------------------------------------------------------------
    op(0x74, InstrSpec("MOV", "A,#imm", 2, bsrc=BSRC_OP1,
                       aluop=ALU_PASSB, dest=DEST_ACC))
    for n in range(8):
        op(0x78 + n, InstrSpec("MOV", f"R{n},#imm", 2, agen=AGEN_REG,
                               bsrc=BSRC_OP1, aluop=ALU_PASSB,
                               dest=DEST_MEM))
        op(0xE8 + n, InstrSpec("MOV", f"A,R{n}", 1, agen=AGEN_REG,
                               aluop=ALU_PASSB, dest=DEST_ACC))
        op(0xF8 + n, InstrSpec("MOV", f"R{n},A", 1, agen=AGEN_REG,
                               aluop=ALU_PASSA, dest=DEST_MEM))
    for i in range(2):
        op(0xE6 + i, InstrSpec("MOV", f"A,@R{i}", 1, agen=AGEN_IND,
                               aluop=ALU_PASSB, dest=DEST_ACC))
        op(0xF6 + i, InstrSpec("MOV", f"@R{i},A", 1, agen=AGEN_IND,
                               aluop=ALU_PASSA, dest=DEST_MEM))
        op(0x76 + i, InstrSpec("MOV", f"@R{i},#imm", 2, agen=AGEN_IND,
                               bsrc=BSRC_OP1, aluop=ALU_PASSB,
                               dest=DEST_MEM))
    op(0xE5, InstrSpec("MOV", "A,dir", 2, agen=AGEN_DIR,
                       aluop=ALU_PASSB, dest=DEST_ACC))
    op(0xF5, InstrSpec("MOV", "dir,A", 2, agen=AGEN_DIR,
                       aluop=ALU_PASSA, dest=DEST_MEM))
    op(0x75, InstrSpec("MOV", "dir,#imm", 3, agen=AGEN_DIR,
                       bsrc=BSRC_OP2, aluop=ALU_PASSB, dest=DEST_MEM))

    # Arithmetic -------------------------------------------------------------
    def arith(base: int, mnemonic: str, aluop: int) -> None:
        op(base + 0x04, InstrSpec(mnemonic, "A,#imm", 2, bsrc=BSRC_OP1,
                                  aluop=aluop, dest=DEST_ACC,
                                  flags=FLAG_ARITH))
        op(base + 0x05, InstrSpec(mnemonic, "A,dir", 2, agen=AGEN_DIR,
                                  aluop=aluop, dest=DEST_ACC,
                                  flags=FLAG_ARITH))
        for i in range(2):
            op(base + 0x06 + i, InstrSpec(mnemonic, f"A,@R{i}", 1,
                                          agen=AGEN_IND, aluop=aluop,
                                          dest=DEST_ACC, flags=FLAG_ARITH))
        for n in range(8):
            op(base + 0x08 + n, InstrSpec(mnemonic, f"A,R{n}", 1,
                                          agen=AGEN_REG, aluop=aluop,
                                          dest=DEST_ACC, flags=FLAG_ARITH))

    arith(0x20, "ADD", ALU_ADD)
    arith(0x30, "ADDC", ALU_ADDC)
    arith(0x90, "SUBB", ALU_SUBB)

    # Stack and subroutines ---------------------------------------------------
    op(0xC0, InstrSpec("PUSH", "dir", 2, agen=AGEN_DIR, aluop=ALU_PASSB,
                       dest=DEST_MEM, stack=STACK_PUSH))
    op(0xD0, InstrSpec("POP", "dir", 2, agen=AGEN_DIR, aluop=ALU_PASSB,
                       dest=DEST_MEM, stack=STACK_POP))
    op(0x12, InstrSpec("LCALL", "addr16", 3, dest=DEST_MEM,
                       branch=BR_LJMP, stack=STACK_CALL))
    op(0x22, InstrSpec("RET", "", 1, agen=AGEN_IND, branch=BR_RET,
                       stack=STACK_RET))

    # DPTR and code-memory access ---------------------------------------------
    op(0x90, InstrSpec("MOV", "DPTR,#imm16", 3, ext=EXT_DPTR_LOAD))
    op(0xA3, InstrSpec("INC", "DPTR", 1, ext=EXT_DPTR_INC))
    op(0x93, InstrSpec("MOVC", "A,@A+DPTR", 1, agen=AGEN_DIR,
                       aluop=ALU_PASSB, dest=DEST_ACC, ext=EXT_MOVC))

    # Logic (no flags besides parity, which is combinational) ---------------
    def logic(base: int, mnemonic: str, aluop: int) -> None:
        op(base + 0x04, InstrSpec(mnemonic, "A,#imm", 2, bsrc=BSRC_OP1,
                                  aluop=aluop, dest=DEST_ACC))
        op(base + 0x05, InstrSpec(mnemonic, "A,dir", 2, agen=AGEN_DIR,
                                  aluop=aluop, dest=DEST_ACC))
        for i in range(2):
            op(base + 0x06 + i, InstrSpec(mnemonic, f"A,@R{i}", 1,
                                          agen=AGEN_IND, aluop=aluop,
                                          dest=DEST_ACC))
        for n in range(8):
            op(base + 0x08 + n, InstrSpec(mnemonic, f"A,R{n}", 1,
                                          agen=AGEN_REG, aluop=aluop,
                                          dest=DEST_ACC))

    logic(0x50, "ANL", ALU_AND)
    logic(0x40, "ORL", ALU_OR)
    logic(0x60, "XRL", ALU_XOR)

    # INC / DEC ------------------------------------------------------------
    op(0x04, InstrSpec("INC", "A", 1, aluop=ALU_INC, dest=DEST_ACC))
    op(0x14, InstrSpec("DEC", "A", 1, aluop=ALU_DEC, dest=DEST_ACC))
    op(0x05, InstrSpec("INC", "dir", 2, agen=AGEN_DIR, asrc=ASRC_TMP,
                       aluop=ALU_INC, dest=DEST_MEM))
    op(0x15, InstrSpec("DEC", "dir", 2, agen=AGEN_DIR, asrc=ASRC_TMP,
                       aluop=ALU_DEC, dest=DEST_MEM))
    for i in range(2):
        op(0x06 + i, InstrSpec("INC", f"@R{i}", 1, agen=AGEN_IND,
                               asrc=ASRC_TMP, aluop=ALU_INC, dest=DEST_MEM))
        op(0x16 + i, InstrSpec("DEC", f"@R{i}", 1, agen=AGEN_IND,
                               asrc=ASRC_TMP, aluop=ALU_DEC, dest=DEST_MEM))
    for n in range(8):
        op(0x08 + n, InstrSpec("INC", f"R{n}", 1, agen=AGEN_REG,
                               asrc=ASRC_TMP, aluop=ALU_INC, dest=DEST_MEM))
        op(0x18 + n, InstrSpec("DEC", f"R{n}", 1, agen=AGEN_REG,
                               asrc=ASRC_TMP, aluop=ALU_DEC, dest=DEST_MEM))

    # Accumulator/carry operations ------------------------------------------
    op(0xE4, InstrSpec("CLR", "A", 1, aluop=ALU_CLR, dest=DEST_ACC))
    op(0xF4, InstrSpec("CPL", "A", 1, aluop=ALU_CPL, dest=DEST_ACC))
    op(0x23, InstrSpec("RL", "A", 1, aluop=ALU_RL, dest=DEST_ACC))
    op(0x03, InstrSpec("RR", "A", 1, aluop=ALU_RR, dest=DEST_ACC))
    op(0xC3, InstrSpec("CLR", "C", 1, flags=FLAG_CY0))
    op(0xD3, InstrSpec("SETB", "C", 1, flags=FLAG_CY1))
    op(0xB3, InstrSpec("CPL", "C", 1, flags=FLAG_CYCPL))

    # XCH -----------------------------------------------------------------
    op(0xC5, InstrSpec("XCH", "A,dir", 2, agen=AGEN_DIR, aluop=ALU_PASSA,
                       dest=DEST_MEM, xch=True))
    for i in range(2):
        op(0xC6 + i, InstrSpec("XCH", f"A,@R{i}", 1, agen=AGEN_IND,
                               aluop=ALU_PASSA, dest=DEST_MEM, xch=True))
    for n in range(8):
        op(0xC8 + n, InstrSpec("XCH", f"A,R{n}", 1, agen=AGEN_REG,
                               aluop=ALU_PASSA, dest=DEST_MEM, xch=True))

    # Branches ----------------------------------------------------------------
    op(0x40 - 0x40 + 0x40, InstrSpec("JC", "rel", 2, branch=BR_JC))
    op(0x50, InstrSpec("JNC", "rel", 2, branch=BR_JNC))
    op(0x60, InstrSpec("JZ", "rel", 2, branch=BR_JZ))
    op(0x70, InstrSpec("JNZ", "rel", 2, branch=BR_JNZ))
    op(0x80, InstrSpec("SJMP", "rel", 2, branch=BR_SJMP))
    op(0x02, InstrSpec("LJMP", "addr16", 3, branch=BR_LJMP))
    op(0xB4, InstrSpec("CJNE", "A,#imm,rel", 3, bsrc=BSRC_OP1,
                       aluop=ALU_CMP, branch=BR_CJNE, flags=FLAG_CMP))
    op(0xB5, InstrSpec("CJNE", "A,dir,rel", 3, agen=AGEN_DIR,
                       aluop=ALU_CMP, branch=BR_CJNE, flags=FLAG_CMP))
    for i in range(2):
        op(0xB6 + i, InstrSpec("CJNE", f"@R{i},#imm,rel", 3, agen=AGEN_IND,
                               asrc=ASRC_TMP, bsrc=BSRC_OP1, aluop=ALU_CMP,
                               branch=BR_CJNE, flags=FLAG_CMP))
    for n in range(8):
        op(0xB8 + n, InstrSpec("CJNE", f"R{n},#imm,rel", 3, agen=AGEN_REG,
                               asrc=ASRC_TMP, bsrc=BSRC_OP1, aluop=ALU_CMP,
                               branch=BR_CJNE, flags=FLAG_CMP))
    op(0xD5, InstrSpec("DJNZ", "dir,rel", 3, agen=AGEN_DIR, asrc=ASRC_TMP,
                       aluop=ALU_DEC, dest=DEST_MEM, branch=BR_DJNZ))
    for n in range(8):
        op(0xD8 + n, InstrSpec("DJNZ", f"R{n},rel", 2, agen=AGEN_REG,
                               asrc=ASRC_TMP, aluop=ALU_DEC, dest=DEST_MEM,
                               branch=BR_DJNZ))
    return ops


#: All implemented opcodes; undefined encodings execute as NOP.
OPCODES: Dict[int, InstrSpec] = _build_opcodes()

#: Spec used for undefined encodings.
NOP_SPEC = OPCODES[0x00]


def spec_for(opcode: int) -> InstrSpec:
    """Spec of *opcode* (undefined opcodes behave as NOP)."""
    return OPCODES.get(opcode & 0xFF, NOP_SPEC)


def lookup(mnemonic: str, fmt: str) -> Optional[Tuple[int, InstrSpec]]:
    """Find the opcode for a (mnemonic, operand-format) pair."""
    for code, spec in OPCODES.items():
        if spec.mnemonic == mnemonic and spec.fmt == fmt:
            return code, spec
    return None
