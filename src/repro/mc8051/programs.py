"""Workload programs for the microcontroller experiments.

The paper's workload is "the Bubblesort algorithm, which is commonly used
in HDL-based fault injection experiments" (section 6.1); it ran for 1303
clock cycles on the modelled 8051.  This module provides that workload plus
several companions, each with a Python-side expected-results oracle:

* :func:`bubblesort` — in-place ascending sort; the sorted array is then
  streamed to port P1, one element per write (the observable outputs).
* :func:`array_sum` — accumulate an array, emit the 8-bit sum on P1.
* :func:`fibonacci` — iterative Fibonacci, emitting each term on P1.
* :func:`multiply` — 8x8 shift-and-add product, emitting low/high bytes.

Every program ends in the idiomatic terminal self-loop ``SJMP $`` (encoded
``0x80 0xFE``), which the golden-run machinery uses to size experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..errors import WorkloadError
from .asm import assemble

#: IRAM address where workload arrays live.
ARRAY_BASE = 0x30


@dataclass
class Workload:
    """An assembled program plus its observable-output oracle."""

    name: str
    rom: bytes
    expected_p1: List[int] = field(default_factory=list)
    description: str = ""

    @property
    def terminal_loop(self) -> bool:
        """Whether the program ends in ``SJMP $``."""
        return b"\x80\xfe" in self.rom


def _init_array(values: Sequence[int]) -> str:
    """Unrolled immediate writes of *values* to IRAM at ARRAY_BASE."""
    lines = [f"        MOV R0,#{ARRAY_BASE}"]
    for value in values:
        lines.append(f"        MOV @R0,#{value & 0xFF}")
        lines.append("        INC R0")
    return "\n".join(lines)


def bubblesort(values: Sequence[int]) -> Workload:
    """The paper's Bubblesort workload over *values* (ascending).

    After sorting, every element is written to P1 in order — those writes
    are the output trace the Failure classification compares.
    """
    n = len(values)
    if n < 2:
        raise WorkloadError("bubblesort needs at least two elements")
    source = f"""
{_init_array(values)}
        MOV R2,#{n - 1}
outer:  MOV R0,#{ARRAY_BASE}
        MOV A,R2
        MOV R3,A
inner:  MOV A,@R0
        MOV R4,A
        INC R0
        MOV A,@R0
        MOV R5,A
        CLR C
        SUBB A,R4
        JNC noswap
        MOV A,R4
        MOV @R0,A
        DEC R0
        MOV A,R5
        MOV @R0,A
        INC R0
noswap: DJNZ R3,inner
        DJNZ R2,outer
        MOV R0,#{ARRAY_BASE}
        MOV R2,#{n}
emit:   MOV A,@R0
        MOV 0x90,A
        INC R0
        DJNZ R2,emit
done:   SJMP done
"""
    return Workload(
        name=f"bubblesort{n}",
        rom=assemble(source),
        expected_p1=sorted(v & 0xFF for v in values),
        description=f"sort {n} bytes ascending, stream result to P1")


def array_sum(values: Sequence[int]) -> Workload:
    """Sum an array modulo 256 and emit the total on P1."""
    if not values:
        raise WorkloadError("array_sum needs at least one element")
    n = len(values)
    source = f"""
{_init_array(values)}
        MOV R0,#{ARRAY_BASE}
        MOV R2,#{n}
        CLR A
loop:   ADD A,@R0
        INC R0
        DJNZ R2,loop
        MOV 0x90,A
done:   SJMP done
"""
    return Workload(
        name=f"array_sum{n}",
        rom=assemble(source),
        expected_p1=[sum(v & 0xFF for v in values) & 0xFF],
        description=f"sum {n} bytes, emit the 8-bit total on P1")


def fibonacci(terms: int) -> Workload:
    """Emit the first *terms* Fibonacci numbers (mod 256) on P1."""
    if not 1 <= terms <= 16:
        raise WorkloadError("fibonacci supports 1..16 terms")
    source = f"""
        MOV R1,#0
        MOV R2,#1
        MOV R3,#{terms}
loop:   MOV A,R1
        MOV 0x90,A
        MOV A,R1
        ADD A,R2
        MOV R4,A
        MOV A,R2
        MOV R1,A
        MOV A,R4
        MOV R2,A
        DJNZ R3,loop
done:   SJMP done
"""
    expected = []
    a, b = 0, 1
    for _ in range(terms):
        expected.append(a & 0xFF)
        a, b = b, (a + b) & 0xFFFF
    return Workload(
        name=f"fibonacci{terms}",
        rom=assemble(source),
        expected_p1=expected,
        description=f"first {terms} Fibonacci numbers on P1")


def multiply(a: int, b: int) -> Workload:
    """8x8 -> 16 shift-and-add multiply; emits low then high byte on P1.

    Exercises rotates, conditional branches and carry arithmetic — a
    denser ALU workload than Bubblesort.
    """
    a &= 0xFF
    b &= 0xFF
    source = f"""
        MOV R1,#{a}      ; multiplicand low
        MOV R2,#0        ; multiplicand high
        MOV R3,#{b}      ; multiplier
        MOV R4,#0        ; product low
        MOV R5,#0        ; product high
        MOV R6,#8        ; bit counter
loop:   MOV A,R3
        ANL A,#1
        JZ skip
        ; product += multiplicand (16-bit)
        MOV A,R4
        ADD A,R1
        MOV R4,A
        MOV A,R5
        JNC nocarry
        INC A
nocarry: ADD A,R2
        MOV R5,A
skip:   MOV A,R3
        RR A
        MOV R3,A
        ; multiplicand <<= 1 (16-bit)
        MOV A,R1
        ADD A,R1
        MOV R1,A
        MOV A,R2
        JNC nc2
        ADD A,R2
        INC A
        SJMP sh2
nc2:    ADD A,R2
sh2:    MOV R2,A
        DJNZ R6,loop
        MOV A,R4
        MOV 0x90,A
        MOV A,R5
        MOV 0x90,A
done:   SJMP done
"""
    product = a * b
    return Workload(
        name=f"multiply_{a}x{b}",
        rom=assemble(source),
        expected_p1=[product & 0xFF, (product >> 8) & 0xFF],
        description=f"compute {a}*{b} by shift-and-add, emit 16-bit result")


def sum_of_squares(values: Sequence[int]) -> Workload:
    """Sum of squares via a square() subroutine — exercises the stack.

    Each element is squared by repeated addition inside a called
    subroutine (LCALL/RET with PUSH/POP register preservation); the 8-bit
    total lands on P1.  Faults hitting the stack region of IRAM corrupt
    return addresses — a qualitatively different failure mode from data
    corruption.
    """
    if not values:
        raise WorkloadError("sum_of_squares needs at least one element")
    n = len(values)
    source = f"""
{_init_array(values)}
        MOV R0,#{ARRAY_BASE}
        MOV R2,#{n}
        MOV R6,#0       ; running total
loop:   MOV A,@R0
        MOV R3,A
        LCALL square
        ADD A,R6
        MOV R6,A
        INC R0
        DJNZ R2,loop
        MOV A,R6
        MOV 0x90,A
done:   SJMP done

; square: A = R3 * R3 (mod 256), clobbers R4/R5 (saved on the stack)
square: PUSH 0x04       ; R4 (bank 0 direct address)
        PUSH 0x05       ; R5
        MOV A,R3
        MOV R4,A
        CLR A
        MOV R5,A
        MOV A,R3
        JZ sqdone
sqloop: MOV A,R5
        ADD A,R3
        MOV R5,A
        DJNZ R4,sqloop
sqdone: MOV A,R5
        POP 0x05
        POP 0x04
        RET
"""
    total = sum((v & 0xFF) * (v & 0xFF) for v in values) & 0xFF
    return Workload(
        name=f"sum_of_squares{n}",
        rom=assemble(source),
        expected_p1=[total],
        description=f"sum of squares of {n} bytes via a subroutine, "
                    "result on P1")


def table_lookup(values: Sequence[int]) -> Workload:
    """Code-memory table transform: emit squares[v & 0x0F] for each value.

    The 16-entry squares table lives in ROM and is read through
    ``MOVC A,@A+DPTR`` — so faults in the *ROM block* (or in the DPTR
    registers) corrupt the transform, a location class the RAM-resident
    workloads never exercise.
    """
    if not values:
        raise WorkloadError("table_lookup needs at least one element")
    n = len(values)
    source = f"""
{_init_array(values)}
        MOV R0,#{ARRAY_BASE}
        MOV R2,#{n}
loop:   MOV DPTR,#table
        MOV A,@R0
        ANL A,#0x0F
        MOVC A,@A+DPTR
        MOV 0x90,A
        INC R0
        DJNZ R2,loop
done:   SJMP done
table:  DB {', '.join(str((i * i) & 0xFF) for i in range(16))}
"""
    expected = [((v & 0x0F) * (v & 0x0F)) & 0xFF for v in values]
    return Workload(
        name=f"table_lookup{n}",
        rom=assemble(source),
        expected_p1=expected,
        description=f"ROM-table square lookup of {n} bytes via MOVC")


def paper_bubblesort() -> Workload:
    """The default campaign workload: an 8-element Bubblesort whose run
    length lands near the paper's 1303 clock cycles."""
    return bubblesort([23, 7, 250, 1, 99, 42, 180, 16])


def quick_bubblesort() -> Workload:
    """A shorter 4-element Bubblesort for unit tests and fast campaigns."""
    return bubblesort([9, 3, 12, 5])
