"""Target VLSI model (S4): an 8051-subset microcontroller.

Provides the ISA definition, a two-pass assembler, a reference ISS, the
structural RTL model with the paper's unit partitioning (REG / RAM / ALU /
MEM / FSM) and the workload programs, including the Bubblesort the paper's
experiments run.
"""

from .asm import Assembler, assemble, disassemble
from .debug import (Divergence, TraceEntry, compare_iss_rtl, render_trace,
                    trace_execution)
from .cpu import Mc8051Model, build_mc8051
from .isa import OPCODES, InstrSpec, spec_for
from .iss import IRAM_SIZE, PC_MASK, ROM_SIZE, Iss
from .programs import (ARRAY_BASE, Workload, array_sum, bubblesort,
                       fibonacci, multiply, paper_bubblesort,
                       quick_bubblesort, sum_of_squares,
                       table_lookup)

__all__ = [
    "Assembler",
    "Divergence",
    "TraceEntry",
    "compare_iss_rtl",
    "render_trace",
    "trace_execution",
    "assemble",
    "disassemble",
    "Mc8051Model",
    "build_mc8051",
    "OPCODES",
    "InstrSpec",
    "spec_for",
    "IRAM_SIZE",
    "PC_MASK",
    "ROM_SIZE",
    "Iss",
    "ARRAY_BASE",
    "Workload",
    "array_sum",
    "bubblesort",
    "fibonacci",
    "multiply",
    "paper_bubblesort",
    "quick_bubblesort",
    "sum_of_squares",
    "table_lookup",
]
