"""Netlist -> code compiler: straight-line bitwise-integer Python.

Every net carries a W-bit integer whose bit *k* is the net's binary value
in lane *k*; lane 0 is the golden run.  A LUT truth table is lowered by
Shannon decomposition into a minimal masked boolean expression over its
live operands (``M`` is the all-lanes mask, passed in as a parameter so
the generated code is independent of the lane count), and the whole
design becomes one generated ``step`` function executed once per clock
cycle.  Compilation happens once per design through :func:`compile` and
is cached two ways: per mapped-netlist object, and by source hash across
objects (two implementations of the same design share code objects).

Two flavours are generated:

* the **lane flavour** (:func:`compile_design`) for
  :class:`~repro.synth.mapped.MappedNetlist` — dead logic stripped, a
  second ``step_ov`` variant with per-LUT override hooks for truth-table
  faults, flip-flop/memory ports exposed as packed vectors;
* the **net flavour** (:class:`CompiledSim`) for plain
  :class:`~repro.hdl.netlist.Netlist` objects — every gate written into
  the simulator's value array so ``peek`` keeps working, plugged in
  behind the ``backend="compiled"`` seam of
  :func:`repro.hdl.simulator.make_sim`.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..hdl.netlist import CONST0, CONST1, Netlist
from ..hdl.simulator import NetlistSim
from ..obs import metrics as obs_metrics
from ..obs.logsetup import get_logger
from ..obs.tracing import span
from ..synth.mapped import MappedNetlist

log = get_logger("repro.emu.compiler")

_COMPILES = obs_metrics.counter(
    "emu_compile_total",
    "Design compilations by flavour and cache result.")

#: Compiled code namespaces keyed by source hash (shared across designs
#: with identical structure, e.g. re-implementations of one netlist).
_CODE_CACHE: Dict[str, Dict] = {}

#: Packed truth-table evaluators keyed by 16-bit padded table.
_TT_FN_CACHE: Dict[int, Callable] = {}


# ---------------------------------------------------------------------------
# expression generation
# ---------------------------------------------------------------------------
def _cofactor(tt: int, n_vars: int, pos: int, value: int) -> int:
    """Truth table with variable *pos* fixed to *value* (one var fewer)."""
    out = 0
    low_mask = (1 << pos) - 1
    for index in range(1 << (n_vars - 1)):
        full = ((index >> pos) << (pos + 1)) | (index & low_mask)
        if value:
            full |= 1 << pos
        if (tt >> full) & 1:
            out |= 1 << index
    return out


def _fold_constants(tt: int, ins: Tuple[int, ...]) -> Tuple[int, List[int]]:
    """Cofactor away constant operands; returns (tt', non-const nets)."""
    nets = list(ins)
    for pos in range(len(nets) - 1, -1, -1):
        net = nets[pos]
        if net == CONST0 or net == CONST1:
            tt = _cofactor(tt, len(nets), pos, 1 if net == CONST1 else 0)
            del nets[pos]
    return tt, nets


def bool_expr(tt: int, names: List[str]) -> str:
    """Masked bitwise expression computing *tt* over packed operands.

    Operands and the result are subsets of the all-lanes mask ``M``;
    Shannon decomposition on the last variable with special cases for
    the buffer/inverter/XOR cofactor patterns keeps the operation count
    near the minimum for 4-input tables.
    """
    n_vars = len(names)
    full = (1 << (1 << n_vars)) - 1
    if tt == 0:
        return "0"
    if tt == full:
        return "M"
    if n_vars == 1:
        return names[0] if tt == 0b10 else f"(M ^ {names[0]})"
    half = 1 << (n_vars - 1)
    sub_full = (1 << half) - 1
    f0, f1 = tt & sub_full, tt >> half
    var = names[-1]
    rest = names[:-1]
    if f0 == f1:
        return bool_expr(f0, rest)
    if f0 == 0 and f1 == sub_full:
        return var
    if f0 == sub_full and f1 == 0:
        return f"(M ^ {var})"
    if f1 == (f0 ^ sub_full):
        return f"({var} ^ {bool_expr(f0, rest)})"
    if f0 == 0:
        return f"({var} & {bool_expr(f1, rest)})"
    if f1 == 0:
        return f"({bool_expr(f0, rest)} & ~{var})"
    if f0 == sub_full:
        return f"({bool_expr(f1, rest)} | (M ^ {var}))"
    if f1 == sub_full:
        return f"({var} | {bool_expr(f0, rest)})"
    return (f"(({bool_expr(f0, rest)} & ~{var})"
            f" | ({bool_expr(f1, rest)} & {var}))")


def tt_function(padded_tt: int) -> Callable:
    """Packed evaluator ``f(a, b, c, d, M)`` for a 16-bit truth table.

    Used by the lane manager's override hooks to recompute a faulted
    LUT's value (pulse inversion, indetermination stuck level) for the
    lanes whose experiment rewrote the table.
    """
    cached = _TT_FN_CACHE.get(padded_tt)
    if cached is not None:
        return cached
    expr = bool_expr(padded_tt & 0xFFFF, ["a", "b", "c", "d"])
    fn = eval(f"lambda a, b, c, d, M: {expr}")  # noqa: S307 - own codegen
    _TT_FN_CACHE[padded_tt] = fn
    return fn


# ---------------------------------------------------------------------------
# compiled-design description (lane flavour)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MemSpec:
    """Port layout of one memory block in the generated code's B vector."""

    name: str
    depth: int
    width: int
    rom: bool
    init: Tuple[int, ...]
    r_base: int                  # first index of this block's rdata in R
    b_raddr: Tuple[int, ...]     # indices into B, read-address bits
    b_we: int                    # index into B, write enable (-1 for ROM)
    b_waddr: Tuple[int, ...]
    b_wdata: Tuple[int, ...]


@dataclass(frozen=True)
class CompiledDesign:
    """One design lowered to a pair of generated step functions.

    ``step(M, S, I, R, D, O, B)`` evaluates one clock cycle: it reads
    packed flip-flop state ``S``, primary inputs ``I`` and registered
    memory read ports ``R``, and writes next-state ``D``, flat primary
    outputs ``O`` and memory port values ``B``.  ``step_hooked`` is the
    same function with a per-LUT override dictionary (``OV``) consulted
    after each LUT assignment; it only runs on cycles with an active
    truth-table fault.
    """

    name: str
    source: str
    step: Callable
    step_hooked: Callable
    ff_init: Tuple[int, ...]
    input_positions: Tuple[Tuple[str, Tuple[int, ...]], ...]
    outputs: Tuple[Tuple[str, int], ...]
    mems: Tuple[MemSpec, ...]
    n_flat_in: int
    n_flat_out: int
    n_r: int
    n_b: int
    live_luts: int


def _operand(net: int) -> str:
    if net == CONST0:
        return "0"
    if net == CONST1:
        return "M"
    return f"v{net}"


def _generate_mapped(mapped: MappedNetlist) -> Tuple[str, Dict]:
    """Generate lane-flavour source plus the port-layout metadata."""
    # Fold constant LUT operands once; keep the original padded input
    # list alongside for the override hooks (they see the raw 4 inputs).
    folded = []
    for lut in mapped.luts:
        tt, nets = _fold_constants(lut.padded_tt(), tuple(
            list(lut.ins) + [CONST0] * (4 - len(lut.ins))))
        folded.append((tt, nets))

    # Dead-logic strip: only LUTs that (transitively) feed an output, a
    # flip-flop or a memory port are evaluated.  Faults on dead LUTs are
    # no-ops in the reference device too — their value feeds nothing.
    roots = set()
    for nets in mapped.outputs.values():
        roots.update(nets)
    for ff in mapped.ffs:
        roots.add(ff.d)
    for bram in mapped.brams:
        roots.update(bram.raddr)
        if not bram.rom:
            roots.add(bram.we)
            roots.update(bram.waddr)
            roots.update(bram.wdata)
    live_nets = set(roots)
    live = [False] * len(mapped.luts)
    for index in range(len(mapped.luts) - 1, -1, -1):
        lut = mapped.luts[index]
        if lut.out in live_nets:
            live[index] = True
            live_nets.update(folded[index][1])
            live_nets.update(net for net in lut.ins
                             if net not in (CONST0, CONST1))

    loads: List[str] = []
    for ff_index, ff in enumerate(mapped.ffs):
        if ff.q in live_nets:
            loads.append(f"    v{ff.q} = S[{ff_index}]")
    input_positions = []
    flat_in = 0
    for name, nets in mapped.inputs.items():
        positions = []
        for net in nets:
            positions.append(flat_in)
            if net in live_nets:
                loads.append(f"    v{net} = I[{flat_in}]")
            flat_in += 1
        input_positions.append((name, tuple(positions)))
    n_r = 0
    for bram in mapped.brams:
        for net in bram.rdata:
            if net in live_nets:
                loads.append(f"    v{net} = R[{n_r}]")
            n_r += 1

    body: List[str] = []
    hooks: Dict[int, str] = {}
    for index, lut in enumerate(mapped.luts):
        if not live[index]:
            continue
        tt, nets = folded[index]
        body.append(f"    v{lut.out} = "
                    f"{bool_expr(tt, [f'v{n}' for n in nets])}")
        padded = list(lut.ins) + [CONST0] * (4 - len(lut.ins))
        args = ", ".join(_operand(net) for net in padded)
        hooks[len(body) - 1] = (
            f"    if {index} in OV:\n"
            f"        v{lut.out} = OV[{index}](v{lut.out}, {args})")

    stores: List[str] = []
    for ff_index, ff in enumerate(mapped.ffs):
        stores.append(f"    D[{ff_index}] = {_operand(ff.d)}")
    outputs = []
    flat_out = 0
    for name, nets in mapped.outputs.items():
        outputs.append((name, len(nets)))
        for net in nets:
            stores.append(f"    O[{flat_out}] = {_operand(net)}")
            flat_out += 1
    mems: List[MemSpec] = []
    n_b = 0
    r_base = 0
    for bram in mapped.brams:
        def port(nets) -> Tuple[int, ...]:
            nonlocal n_b
            indices = []
            for net in nets:
                stores.append(f"    B[{n_b}] = {_operand(net)}")
                indices.append(n_b)
                n_b += 1
            return tuple(indices)

        b_raddr = port(bram.raddr)
        b_we = -1
        b_waddr: Tuple[int, ...] = ()
        b_wdata: Tuple[int, ...] = ()
        if not bram.rom:
            (b_we,) = port((bram.we,))
            b_waddr = port(bram.waddr)
            b_wdata = port(bram.wdata)
        mems.append(MemSpec(name=bram.name, depth=bram.depth,
                            width=bram.width, init=tuple(bram.init),
                            rom=bram.rom, r_base=r_base, b_raddr=b_raddr,
                            b_we=b_we, b_waddr=b_waddr, b_wdata=b_wdata))
        r_base += bram.width

    lines = ["def step(M, S, I, R, D, O, B):"]
    lines += loads or ["    pass"]
    lines += body
    lines += stores
    lines.append("")
    lines.append("def step_ov(M, S, I, R, D, O, B, OV):")
    lines += loads or ["    pass"]
    for offset, line in enumerate(body):
        lines.append(line)
        hook = hooks.get(offset)
        if hook is not None:
            lines.append(hook)
    lines += stores
    lines.append("")
    meta = {
        "input_positions": tuple(input_positions),
        "outputs": tuple(outputs),
        "mems": tuple(mems),
        "n_flat_in": flat_in,
        "n_flat_out": flat_out,
        "n_r": n_r,
        "n_b": n_b,
        "live_luts": sum(live),
    }
    return "\n".join(lines), meta


def _exec_cached(source: str, filename: str) -> Dict:
    digest = hashlib.sha1(source.encode("utf-8")).hexdigest()
    namespace = _CODE_CACHE.get(digest)
    if namespace is None:
        namespace = {}
        exec(compile(source, filename, "exec"), namespace)  # noqa: S102
        _CODE_CACHE[digest] = namespace
    return namespace


def design_fingerprint(mapped: MappedNetlist) -> str:
    """Structural identity of a mapped design, for the on-disk cache.

    Covers everything :func:`_generate_mapped` reads — LUT tables and
    connectivity, flip-flops, memory blocks, port assignments — so two
    structurally identical implementations share one cache entry and
    any structural change misses.
    """
    payload = repr((
        mapped.n_nets,
        [(lut.out, lut.ins, lut.tt) for lut in mapped.luts],
        [(ff.q, ff.d, ff.init) for ff in mapped.ffs],
        [(bram.name, bram.depth, bram.width, bram.raddr, bram.rdata,
          bram.we, bram.waddr, bram.wdata, tuple(bram.init), bram.rom)
         for bram in mapped.brams],
        sorted((name, tuple(nets))
               for name, nets in mapped.inputs.items()),
        sorted((name, tuple(nets))
               for name, nets in mapped.outputs.items()),
    ))
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()


def _meta_to_json(meta: Dict) -> Dict:
    value = dict(meta)
    value["mems"] = [dataclasses.asdict(mem) for mem in meta["mems"]]
    return value


def _meta_from_json(value: Dict) -> Dict:
    meta = dict(value)
    meta["input_positions"] = tuple(
        (name, tuple(positions))
        for name, positions in value["input_positions"])
    meta["outputs"] = tuple(
        (name, position) for name, position in value["outputs"])
    meta["mems"] = tuple(
        MemSpec(**{key: tuple(item) if isinstance(item, list) else item
                   for key, item in mem.items()})
        for mem in value["mems"])
    return meta


def _disk_cached_generation(mapped: MappedNetlist):
    """Serve ``(source, meta)`` from ``REPRO_CACHE_DIR``, or generate
    and persist.  Returns ``None`` when caching is disabled."""
    from ..runtime import diskcache

    cache = diskcache.cache_dir()
    if cache is None:
        return None
    path = cache / "emu" / f"{design_fingerprint(mapped)}.json"
    blob = diskcache.load_json(path)
    if isinstance(blob, dict):
        try:
            meta = _meta_from_json(blob["meta"])
            source = blob["source"]
        except (KeyError, TypeError) as error:
            log.warning("compiled-source cache entry %s malformed "
                        "(%s); regenerating", path, error)
        else:
            _COMPILES.inc(flavor="mapped", result="disk_hit")
            return source, meta
    source, meta = _generate_mapped(mapped)
    diskcache.store_json(path, {"source": source,
                                "meta": _meta_to_json(meta)})
    return source, meta


def compile_design(mapped: MappedNetlist) -> CompiledDesign:
    """Compile a mapped netlist to its lane-flavour step functions.

    The result is cached on the mapped-netlist object; regenerated
    sources that hash identically reuse already-compiled code objects,
    and with ``REPRO_CACHE_DIR`` set the generated source itself
    persists across processes (keyed by structural fingerprint).
    """
    cached = getattr(mapped, "_emu_design", None)
    if cached is not None:
        _COMPILES.inc(flavor="mapped", result="hit")
        return cached
    with span("emu_compile", design=mapped.name, flavor="mapped"):
        generated = _disk_cached_generation(mapped)
        if generated is None:
            source, meta = _generate_mapped(mapped)
        else:
            source, meta = generated
        namespace = _exec_cached(source, f"<emu:{mapped.name}>")
    design = CompiledDesign(
        name=mapped.name, source=source,
        step=namespace["step"], step_hooked=namespace["step_ov"],
        ff_init=tuple(ff.init for ff in mapped.ffs), **meta)
    mapped._emu_design = design
    _COMPILES.inc(flavor="mapped", result="miss")
    return design


# ---------------------------------------------------------------------------
# net flavour: the hdl-level ``backend="compiled"`` simulator
# ---------------------------------------------------------------------------
def _generate_netlist(netlist: Netlist) -> str:
    lines = ["def step(M, V):"]
    emitted = False
    for gate in netlist.gates:
        tt = gate.tt & ((1 << (1 << len(gate.ins))) - 1)
        tt, nets = _fold_constants(tt, tuple(gate.ins))
        if not nets:
            expr = "M" if tt & 1 else "0"
        else:
            expr = bool_expr(tt, [f"V[{net}]" for net in nets])
        lines.append(f"    V[{gate.out}] = {expr}")
        emitted = True
    if not emitted:
        lines.append("    pass")
    lines.append("")
    return "\n".join(lines)


class CompiledSim(NetlistSim):
    """Drop-in :class:`NetlistSim` replacement running generated code.

    Gate evaluation is replaced by one generated function writing every
    gate's settled value into the simulator's value array, so ``peek``
    and the capture/reset semantics are inherited unchanged.  Selected
    through ``make_sim(netlist, backend="compiled")``.
    """

    def __init__(self, netlist: Netlist):
        super().__init__(netlist)
        with span("emu_compile", design=netlist.name, flavor="net"):
            source = _generate_netlist(netlist)
            namespace = _exec_cached(source, f"<emu:{netlist.name}>")
        self._compiled_source = source
        self._step_fn = namespace["step"]
        _COMPILES.inc(flavor="net", result="miss")

    def step(self, inputs: Optional[Dict[str, int]] = None
             ) -> Dict[str, Optional[int]]:
        """Advance one clock cycle; return the settled primary outputs."""
        self.set_inputs(inputs)
        values = self._values
        values[CONST0] = 0
        values[CONST1] = 1
        for name, nets in self._input_nets:
            held = self._held_inputs[name]
            for position, net in enumerate(nets):
                values[net] = (held >> position) & 1
        for dff, state in zip(self.netlist.dffs, self._ff_state):
            values[dff.q] = state
        self._step_fn(1, values)
        outputs = self._sample_outputs()
        self._capture()
        self.cycle += 1
        return outputs
