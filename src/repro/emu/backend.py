"""Campaign adapter: translate prepared injections into lane operations.

The adapter keeps the compiled backend *protocol-identical* to the
reference backend: for every fault it still builds the real
:class:`~repro.core.injector.Injection` and drives its ``inject`` /
``tick`` / ``remove`` hooks against the reference device — so board
transactions (and therefore the emulated Table 2 costs), injector RNG
consumption, and delay-fault timing analysis are bit-identical to the
reference path.  What it *skips* is the per-experiment workload
execution: the injection's behavioural effect is translated into
lane-masked operations on a :class:`~repro.emu.lanes.BatchSchedule`, and
one lane-engine pass evaluates up to ``lane_width() - 1`` experiments
against the golden run in lane 0.

Faults whose effect cannot be expressed as lane operations
(configuration-memory upsets, permanent models) fall back to the
reference experiment loop, interleaved in fault order so randomiser
streams stay aligned.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence

from ..core.campaign import _EXPERIMENTS, _RECONFIG_SECONDS, ExperimentResult
from ..core.classify import Outcome
from ..core.faults import Fault, FaultModel, TargetKind
from ..core.injector import invert_lut_line, stuck_lut_line
from ..hdl.trace import Trace
from ..obs import metrics as obs_metrics
from ..obs.logsetup import get_logger
from ..obs.tracing import span
from .compiler import compile_design
from .lanes import BatchSchedule, run_lanes

log = get_logger("repro.emu.backend")

_LANE_FAULTS = obs_metrics.counter(
    "emu_lane_faults_total",
    "Faults evaluated by the compiled backend, by execution mode.")
_FALLBACKS = obs_metrics.counter(
    "emu_backend_fallbacks_total",
    "Campaigns degraded from the compiled to the reference backend, "
    "by cause.")

#: Default lane count.  Lane 0 is the golden run, so a batch carries
#: ``lane_width() - 1`` fault experiments.  Lane vectors are arbitrary-
#: precision ints sized by the *occupied* lanes of each batch, so a wide
#: default only makes batches fuller (fewer engine passes), never wider
#: than the faults at hand.
DEFAULT_LANES = 256


def lane_width() -> int:
    """Lanes per batch; override with ``REPRO_EMU_LANES`` (minimum 2)."""
    try:
        width = int(os.environ.get("REPRO_EMU_LANES", DEFAULT_LANES))
    except ValueError:
        width = DEFAULT_LANES
    return max(2, width)


def supports_fault(fault: Fault) -> bool:
    """Whether the lane engine can express this fault's effect.

    Everything in the paper's Table 1 is supported.  Configuration-memory
    upsets and the permanent extension models mutate logic or routing in
    ways the compiled design does not model, so they take the reference
    path.
    """
    model = fault.model
    kind = fault.target.kind
    if model is FaultModel.BITFLIP:
        kinds = {target.kind for target in fault.all_targets}
        return kinds in ({TargetKind.FF}, {TargetKind.MEMORY_BIT})
    if model is FaultModel.PULSE:
        return kind in (TargetKind.LUT, TargetKind.CB_INPUT)
    if model is FaultModel.DELAY:
        return kind is TargetKind.NET
    if model is FaultModel.INDETERMINATION:
        return kind in (TargetKind.FF, TargetKind.LUT)
    return False


def compile_or_fallback(campaign):
    """Compile the campaign's design, degrading gracefully on failure.

    Returns the compiled design, or ``None`` after switching the
    campaign to the reference backend — a compiler defect must cost a
    campaign its speed-up, never its results.  The ``compile_fail``
    chaos point fires inside the guarded region so the degradation path
    stays testable without a real compiler bug.
    """
    from .. import chaos
    try:
        chaos.check_raise("compile_fail")
        return compile_design(campaign.impl.mapped)
    except Exception as error:
        log.warning(
            "compiled backend unavailable (%s: %s); "
            "falling back to the reference backend",
            type(error).__name__, error)
        _FALLBACKS.inc(cause=type(error).__name__)
        campaign.backend = "reference"
        return None


def compiled_golden(campaign, cycles: int) -> Optional[Trace]:
    """Golden run through the lane engine (single lane, no faults).

    Returns ``None`` when compilation fails; the campaign is then
    already degraded to the reference backend and the caller falls
    through to the reference simulation loop.
    """
    design = compile_or_fallback(campaign)
    if design is None:
        return None
    with span("run", cycles=cycles, lanes=1, backend="compiled"):
        lane_result = run_lanes(design, 1, cycles, inputs=campaign.inputs)
    trace = Trace(tuple(campaign.impl.mapped.outputs))
    for sample in lane_result.samples:
        trace.record(sample)
    trace.final_state = lane_result.final_state
    trace.cycles = cycles
    return trace


def _replay(campaign, fault: Fault, cycles: int, lane: int,
            schedule: BatchSchedule, pool: int):
    """Drive one fault's reconfiguration protocol; schedule its lane ops.

    Follows ``FadesCampaign._run_experiment`` transaction for
    transaction — same injection object, same ``reconfigure`` spans, same
    board log, same time-model bookkeeping — with the workload stepping
    replaced by operations on *schedule* for *lane*.
    """
    device = campaign.device
    marker = campaign.time_model.begin_experiment()
    board_marker = campaign.board.snapshot()
    campaign.board.set_label(fault.model.value)

    injection = campaign.injector.prepare(fault)
    mechanism = (getattr(injection, "mechanism_label", "")
                 or fault.model.value)
    if fault.duration_cycles >= 1.0:
        window = fault.whole_cycles
    else:
        window = 1 if fault.straddles_edge else 0
    start = min(fault.start_cycle, max(0, cycles - 1))
    active = range(start, min(start + window, cycles))

    with span("reconfigure", mechanism=mechanism, op="inject"):
        injection.inject()
    removed = False
    if window == 0 and fault.model.transient:
        with span("reconfigure", mechanism=mechanism, op="remove"):
            injection.remove()
        removed = True

    model = fault.model
    if model is FaultModel.BITFLIP:
        for target in fault.all_targets:
            if target.kind is TargetKind.FF:
                schedule.xor_ff(start, target.index, lane)
            else:
                schedule.flip_mem(start, target.index, target.addr,
                                  target.bit, lane)
    elif model is FaultModel.PULSE:
        if fault.target.kind is TargetKind.LUT:
            if active:
                faulty_tt = invert_lut_line(injection.golden.tt,
                                            fault.target.line)
                for cycle in active:
                    schedule.override(cycle, fault.target.index, lane,
                                      faulty_tt)
        else:  # CB_INPUT: the capture inverter on the FF's data path
            for cycle in active:
                schedule.invert_capture(cycle, fault.target.index, lane)
    elif model is FaultModel.DELAY:
        # The injected loads/detour are live now; the device's timing
        # analysis says which flip-flops miss setup while they persist.
        violating = sorted(device._violating)
        for cycle in active:
            for ff in violating:
                schedule.violating_capture(cycle, ff, lane)
    else:  # INDETERMINATION
        if fault.target.kind is TargetKind.FF:
            if not active:
                # Sub-cycle, no capture edge: the asynchronous LSR force
                # lands and is released before the next evaluation.
                schedule.set_ff(start, fault.target.index, lane,
                                injection.value)
            for offset, cycle in enumerate(active):
                injection.tick(offset)
                schedule.set_ff(cycle, fault.target.index, lane,
                                injection.value)
                schedule.pin_capture(cycle, fault.target.index, lane,
                                     injection.value)
        else:  # LUT
            golden_tt = injection.golden.tt if active else 0
            for offset, cycle in enumerate(active):
                injection.tick(offset)
                schedule.override(
                    cycle, fault.target.index, lane,
                    stuck_lut_line(golden_tt, fault.target.line,
                                   injection.value))
    if not removed and fault.model.transient:
        with span("reconfigure", mechanism=mechanism, op="remove"):
            injection.remove()

    _RECONFIG_SECONDS.observe(campaign.board.since(board_marker)[1],
                              mechanism=mechanism)
    with span("readback", mechanism=mechanism):
        campaign._restore_configuration()
    return campaign.time_model.end_experiment(marker, cycles, pool)


def run_lane_batch(campaign, faults: Sequence[Fault], cycles: int,
                   pool: int = 0,
                   indices: Optional[Sequence[int]] = None,
                   reseed: Optional[Callable[[int], None]] = None
                   ) -> List[ExperimentResult]:
    """Run a fault list through the lane engine; results in fault order.

    ``indices`` carries each fault's campaign index (observability
    metadata, and the argument handed to ``reseed``); ``reseed`` is the
    runtime's per-experiment injector re-seeding hook.  Faults are
    processed strictly in order — supported ones accumulate into lane
    batches, unsupported ones run through the reference experiment loop
    in place — so injector randomiser consumption matches the reference
    backend exactly.
    """
    results: List[Optional[ExperimentResult]] = [None] * len(faults)
    campaign.golden_run(cycles)
    design = (compile_or_fallback(campaign)
              if campaign.backend == "compiled" else None)
    if design is None:
        # Compilation failed (or the golden run already degraded the
        # campaign): run every fault through the reference loop, in
        # order, so randomiser streams stay aligned.
        for position, fault in enumerate(faults):
            index = indices[position] if indices is not None else position
            if reseed is not None:
                reseed(index)
            _LANE_FAULTS.inc(mode="fallback")
            results[position] = campaign.run_experiment(
                fault, cycles, pool=pool, index=index)
        return results  # type: ignore[return-value]
    width = lane_width()
    # A device whose *golden* configuration already has timing violations
    # or broken routes is outside the compiled model; run everything on
    # the reference path.
    guard = bool(campaign.device._violating or campaign.device._broken_nets)

    batch: List = []  # (result slot, fault, replay cost)
    schedule = BatchSchedule()

    def flush() -> None:
        nonlocal batch, schedule
        if not batch:
            return
        lanes = len(batch) + 1
        with span("run", cycles=cycles, lanes=lanes, backend="compiled"):
            lane_result = run_lanes(design, lanes, cycles,
                                    inputs=campaign.inputs,
                                    schedule=schedule)
        with span("classify", backend="compiled"):
            for slot, (position, fault, cost) in enumerate(batch):
                bit = 1 << (slot + 1)
                if lane_result.fail_mask & bit:
                    outcome = Outcome.FAILURE
                elif lane_result.latent_mask & bit:
                    outcome = Outcome.LATENT
                else:
                    outcome = Outcome.SILENT
                _EXPERIMENTS.inc(outcome=outcome.value)
                results[position] = ExperimentResult(
                    fault=fault, outcome=outcome, cost=cost,
                    first_divergence=lane_result.first_divergence.get(
                        slot + 1))
        batch = []
        schedule = BatchSchedule()

    for position, fault in enumerate(faults):
        index = indices[position] if indices is not None else position
        if reseed is not None:
            reseed(index)
        if guard or not supports_fault(fault):
            _LANE_FAULTS.inc(mode="fallback")
            results[position] = campaign.run_experiment(
                fault, cycles, pool=pool, index=index)
            continue
        _LANE_FAULTS.inc(mode="packed")
        with span("experiment", index=index, model=fault.model.value,
                  target=fault.target.kind.value, backend="compiled"):
            cost = _replay(campaign, fault, cycles, len(batch) + 1,
                           schedule, pool)
        batch.append((position, fault, cost))
        if len(batch) >= width - 1:
            flush()
    flush()
    return results  # type: ignore[return-value]
