"""Lane manager: packed state, fault schedules and the batched run loop.

State is held as *bit planes*: one arbitrary-width integer per flip-flop
(and per memory-cell bit), whose bit *k* is that element's value in lane
*k*.  Lane 0 always carries the golden (fault-free) run; the remaining
lanes each carry one fault experiment.  Fault effects are expressed as a
:class:`BatchSchedule` of lane-masked operations applied around the
compiled design's ``step`` function:

* **pre-step** operations mutate packed state before evaluation —
  bit-flips (XOR), indetermination forces, memory-bit flips;
* **capture** operations fix up the next-state vector after evaluation —
  setup-violation capture of the previous data value (delay faults),
  capture inversion (CB-input pulses), capture pinning (held LSR lines);
* **overrides** swap a LUT's truth table for selected lanes on selected
  cycles (pulse and indetermination faults on LUTs), evaluated through
  the compiled design's hooked step variant.

Failure detection is a lane-wise XOR of every primary-output plane
against lane 0 broadcast; latent detection compares final packed state
the same way.  Both feed :mod:`repro.core.classify` unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..obs import metrics as obs_metrics
from .compiler import CompiledDesign, tt_function

_LANE_CYCLES = obs_metrics.counter(
    "emu_lane_cycles_total",
    "Clock cycles evaluated by the lane engine (per lane batch).")


class BatchSchedule:
    """Per-cycle lane operations for one batch of fault experiments."""

    def __init__(self) -> None:
        #: cycle -> [("xor", ff, mask) | ("set", ff, mask, valmask)
        #:           | ("mem", mem_index, addr, bit, mask)]
        self.pre: Dict[int, List[Tuple]] = {}
        #: cycle -> [("viol", ff, mask, ref_cycle) | ("invert", ff, mask)
        #:           | ("pin", ff, mask, valmask)]
        self.capture: Dict[int, List[Tuple]] = {}
        #: raw next-state values the viol fix-ups need: cycle -> [ff...]
        self.record: Dict[int, List[int]] = {}
        self._recorded: Set[Tuple[int, int]] = set()
        #: cycle -> lut_index -> [(mask, tt_fn)]
        self.overrides: Dict[int, Dict[int, List[Tuple]]] = {}

    # -- pre-step state edits -------------------------------------------
    def xor_ff(self, cycle: int, ff: int, lane: int) -> None:
        """Flip one flip-flop in one lane just before *cycle* evaluates."""
        self.pre.setdefault(cycle, []).append(("xor", ff, 1 << lane))

    def set_ff(self, cycle: int, ff: int, lane: int, value: int) -> None:
        """Force one flip-flop's pre-evaluation value in one lane."""
        mask = 1 << lane
        self.pre.setdefault(cycle, []).append(
            ("set", ff, mask, mask if value else 0))

    def flip_mem(self, cycle: int, mem_index: int, addr: int, bit: int,
                 lane: int) -> None:
        """Flip one memory bit in one lane before *cycle* evaluates."""
        self.pre.setdefault(cycle, []).append(
            ("mem", mem_index, addr, bit, 1 << lane))

    # -- capture fix-ups ------------------------------------------------
    def pin_capture(self, cycle: int, ff: int, lane: int,
                    value: int) -> None:
        """Capture a forced level instead of the data input (held LSR)."""
        mask = 1 << lane
        self.capture.setdefault(cycle, []).append(
            ("pin", ff, mask, mask if value else 0))

    def invert_capture(self, cycle: int, ff: int, lane: int) -> None:
        """Capture the complement of the data input (CB-input pulse)."""
        self.capture.setdefault(cycle, []).append(
            ("invert", ff, 1 << lane))

    def violating_capture(self, cycle: int, ff: int, lane: int) -> None:
        """Capture the *previous* cycle's data value (setup violation)."""
        self.capture.setdefault(cycle, []).append(
            ("viol", ff, 1 << lane, cycle - 1))
        if cycle - 1 >= 0 and (cycle - 1, ff) not in self._recorded:
            self._recorded.add((cycle - 1, ff))
            self.record.setdefault(cycle - 1, []).append(ff)

    # -- truth-table overrides ------------------------------------------
    def override(self, cycle: int, lut_index: int, lane: int,
                 padded_tt: int) -> None:
        """Evaluate one LUT from a different table in one lane."""
        per_lut = self.overrides.setdefault(cycle, {})
        per_lut.setdefault(lut_index, []).append(
            (1 << lane, tt_function(padded_tt)))


@dataclass
class LaneResult:
    """What one batched run produced.

    ``samples`` is the lane-0 (golden) output record, one ``name ->
    value`` dictionary per cycle; ``final_state`` is lane 0's snapshot in
    :meth:`repro.fpga.device.Device.state_snapshot` format.  ``fail_mask``
    has a bit set for every lane whose output sequence diverged from lane
    0 (with the cycle of first divergence in ``first_divergence``), and
    ``latent_mask`` for every lane whose final flip-flop or memory state
    differs from lane 0.
    """

    lanes: int
    samples: List[Dict[str, int]] = field(default_factory=list)
    final_state: Tuple = ()
    fail_mask: int = 0
    latent_mask: int = 0
    first_divergence: Dict[int, int] = field(default_factory=dict)


def _make_hook(pairs: List[Tuple], mask_all: int):
    def hook(current, a, b, c, d):
        for mask, tt_fn in pairs:
            current = (current & ~mask) | (tt_fn(a, b, c, d, mask_all)
                                           & mask)
        return current
    return hook


def run_lanes(design: CompiledDesign, lanes: int, cycles: int,
              inputs: Optional[Dict[str, int]] = None,
              schedule: Optional[BatchSchedule] = None) -> LaneResult:
    """Run *cycles* clock cycles of *design* across *lanes* packed lanes.

    ``inputs`` is the constant primary-input assignment (the campaign
    workload convention: applied at cycle 0, held for the whole run) and
    is broadcast to every lane.  ``schedule`` carries the per-lane fault
    operations; ``None`` runs every lane fault-free.
    """
    mask_all = (1 << lanes) - 1
    schedule = schedule if schedule is not None else BatchSchedule()
    held = dict(inputs or {})
    state = [init * mask_all for init in design.ff_init]
    nxt = [0] * len(state)
    flat_in = [0] * design.n_flat_in
    for name, positions in design.input_positions:
        value = held.get(name, 0)
        for offset, position in enumerate(positions):
            flat_in[position] = ((value >> offset) & 1) * mask_all
    rdata = [0] * design.n_r
    ports = [0] * design.n_b
    flat_out = [0] * design.n_flat_out
    mems = []
    for spec in design.mems:
        words = list(spec.init) + [0] * (spec.depth - len(spec.init))
        mems.append([[((word >> bit) & 1) * mask_all
                      for bit in range(spec.width)]
                     for word in words[:spec.depth]])
    recorded: Dict[Tuple[int, int], int] = {
        (-1, ff): init * mask_all
        for ff, init in enumerate(design.ff_init)}

    step = design.step
    step_hooked = design.step_hooked
    pre_ops = schedule.pre
    capture_ops = schedule.capture
    record_wanted = schedule.record
    override_cycles = schedule.overrides
    result = LaneResult(lanes=lanes)
    samples = result.samples
    fail = 0
    out_layout = []
    position = 0
    for name, width in design.outputs:
        out_layout.append((name, position, width))
        position += width

    for cycle in range(cycles):
        ops = pre_ops.get(cycle)
        if ops:
            for op in ops:
                if op[0] == "xor":
                    state[op[1]] ^= op[2]
                elif op[0] == "set":
                    state[op[1]] = (state[op[1]] & ~op[2]) | op[3]
                else:  # "mem"
                    mems[op[1]][op[2]][op[3]] ^= op[4]
        per_lut = override_cycles.get(cycle)
        if per_lut:
            hooks = {lut: _make_hook(pairs, mask_all)
                     for lut, pairs in per_lut.items()}
            step_hooked(mask_all, state, flat_in, rdata, nxt, flat_out,
                        ports, hooks)
        else:
            step(mask_all, state, flat_in, rdata, nxt, flat_out, ports)

        sample: Dict[str, int] = {}
        for name, base, width in out_layout:
            golden_value = 0
            for offset in range(width):
                plane = flat_out[base + offset]
                bit0 = plane & 1
                golden_value |= bit0 << offset
                fail |= plane ^ (bit0 * mask_all)
            sample[name] = golden_value
        samples.append(sample)
        fresh = fail & ~result.fail_mask
        if fresh:
            result.fail_mask = fail
            while fresh:
                low = fresh & -fresh
                result.first_divergence[low.bit_length() - 1] = cycle
                fresh ^= low

        wanted = record_wanted.get(cycle)
        if wanted:
            for ff in wanted:
                recorded[(cycle, ff)] = nxt[ff]
        ops = capture_ops.get(cycle)
        if ops:
            for op in ops:
                if op[0] == "viol":
                    _kind, ff, mask, ref_cycle = op
                    nxt[ff] = ((nxt[ff] & ~mask)
                               | (recorded[(ref_cycle, ff)] & mask))
            for op in ops:
                if op[0] == "invert":
                    nxt[op[1]] ^= op[2]
            for op in ops:
                if op[0] == "pin":
                    nxt[op[1]] = (nxt[op[1]] & ~op[2]) | op[3]
        state, nxt = nxt, state

        for mem_index, spec in enumerate(design.mems):
            cells = mems[mem_index]
            addr0 = 0
            diff = 0
            for offset, port in enumerate(spec.b_raddr):
                plane = ports[port]
                addr0 |= (plane & 1) << offset
                diff |= plane ^ ((plane & 1) * mask_all)
            if addr0 < spec.depth:
                read = list(cells[addr0])
            else:
                read = [0] * spec.width
            if diff:
                lanes_left = diff
                while lanes_left:
                    low = lanes_left & -lanes_left
                    lanes_left ^= low
                    lane = low.bit_length() - 1
                    addr = 0
                    for offset, port in enumerate(spec.b_raddr):
                        addr |= ((ports[port] >> lane) & 1) << offset
                    if addr == addr0:
                        continue
                    cell = cells[addr] if addr < spec.depth else None
                    for bit in range(spec.width):
                        value = ((cell[bit] >> lane) & 1) if cell else 0
                        read[bit] = (read[bit] & ~low) | (value << lane)
            if not spec.rom:
                write_en = ports[spec.b_we]
                if write_en:
                    waddr0 = 0
                    wdiff = 0
                    for offset, port in enumerate(spec.b_waddr):
                        plane = ports[port]
                        waddr0 |= (plane & 1) << offset
                        wdiff |= plane ^ ((plane & 1) * mask_all)
                    uniform = write_en & ~wdiff
                    if uniform and waddr0 < spec.depth:
                        cell = cells[waddr0]
                        for bit in range(spec.width):
                            cell[bit] = ((cell[bit] & ~uniform)
                                         | (ports[spec.b_wdata[bit]]
                                            & uniform))
                    divergent = write_en & wdiff
                    while divergent:
                        low = divergent & -divergent
                        divergent ^= low
                        lane = low.bit_length() - 1
                        waddr = 0
                        for offset, port in enumerate(spec.b_waddr):
                            waddr |= ((ports[port] >> lane) & 1) << offset
                        if waddr >= spec.depth:
                            continue
                        cell = cells[waddr]
                        for bit in range(spec.width):
                            value = (ports[spec.b_wdata[bit]] >> lane) & 1
                            cell[bit] = (cell[bit] & ~low) | (value << lane)
            base = spec.r_base
            for bit in range(spec.width):
                rdata[base + bit] = read[bit]

    latent = 0
    for plane in state:
        latent |= plane ^ ((plane & 1) * mask_all)
    final_mems = []
    for mem_index, spec in enumerate(design.mems):
        words = []
        for cell in mems[mem_index]:
            word = 0
            for bit, plane in enumerate(cell):
                latent |= plane ^ ((plane & 1) * mask_all)
                word |= (plane & 1) << bit
            words.append(word)
        final_mems.append((spec.name, tuple(words)))
    result.latent_mask = latent
    result.final_state = (tuple(plane & 1 for plane in state),
                          tuple(final_mems))
    if cycles > 0:
        _LANE_CYCLES.inc(cycles, lanes=lanes)
    return result
