"""Bit-parallel autonomous-emulation backend (``repro.emu``).

The paper evaluates one fault per emulation pass; López-Ongil et al.'s
*autonomous emulation* line of work (PAPERS.md) shows the classic answer
to that bottleneck: pack many fault experiments into the bit-lanes of
machine words, keep the golden (fault-free) run in lane 0, and evaluate
the whole batch with one pass of bitwise logic.  Classification then
degenerates to lane-wise XOR against lane 0 — exactly the Failure /
Latent / Silent comparison of :mod:`repro.core.classify`.

The subsystem has three layers:

:mod:`repro.emu.compiler`
    Lowers a mapped LUT netlist into straight-line bitwise-integer
    Python (one expression per live LUT), compiled once per design via
    :func:`compile` and cached by source hash.

:mod:`repro.emu.lanes`
    The lane manager: packed flip-flop/memory state, a per-cycle fault
    schedule (lane-masked XOR/force/override operations), and the run
    loop that produces failure/latent masks plus the lane-0 trace.

:mod:`repro.emu.backend`
    The campaign adapter: translates prepared
    :class:`~repro.core.injector.Injection` mechanisms into lane
    operations while replaying their reconfiguration protocol against
    the reference device — so emulated board costs, injector RNG
    consumption and timing-violation sets stay bit-identical to the
    reference backend.
"""

from .backend import lane_width, run_lane_batch, supports_fault
from .compiler import CompiledDesign, CompiledSim, compile_design
from .lanes import BatchSchedule, LaneResult, run_lanes

__all__ = [
    "BatchSchedule",
    "CompiledDesign",
    "CompiledSim",
    "LaneResult",
    "compile_design",
    "lane_width",
    "run_lane_batch",
    "run_lanes",
    "supports_fault",
]
