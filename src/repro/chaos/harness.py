"""Process-wide chaos activation: the hooks the runtime actually calls.

Instrumented modules never touch :class:`~repro.chaos.plan.ChaosPlan`
directly; they call the free functions here, which consult the active
plan (installed by the CLI, a test, or the ``REPRO_CHAOS`` environment
variable) and do nothing — at near-zero cost — when chaos is off::

    from ..chaos import harness as chaos

    if chaos.fire("worker_crash", key=index, attempt=attempt):
        os._exit(CRASH_EXIT_CODE)

Worker processes receive the parent's plan spec explicitly through the
scheduler (start-method agnostic) and re-install it, so a plan is active
on every process of a campaign, with fresh per-process ``limit``
accounting but identical stateless decisions.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from ..obs import metrics as obs_metrics
from ..obs.logsetup import get_logger
from ..obs.tracing import TRACER
from .plan import ChaosPlan

log = get_logger("repro.chaos")

_INJECTED = obs_metrics.counter(
    "chaos_injected_total",
    "Runtime faults injected by the chaos harness, by point.")

#: Environment variable consulted when no plan was installed explicitly.
ENV_VAR = "REPRO_CHAOS"

_active: Optional[ChaosPlan] = None
_env_checked = False


def install(plan: Optional[ChaosPlan]) -> None:
    """Install (or, with ``None``, clear) the process-wide plan."""
    global _active, _env_checked
    _active = plan
    _env_checked = True  # an explicit install outranks the environment


def clear() -> None:
    """Deactivate chaos and re-arm the environment lookup."""
    global _active, _env_checked
    _active = None
    _env_checked = False


def active() -> Optional[ChaosPlan]:
    """The installed plan, falling back to ``REPRO_CHAOS`` once."""
    global _active, _env_checked
    if _active is None and not _env_checked:
        _env_checked = True
        spec = os.environ.get(ENV_VAR, "").strip()
        if spec:
            _active = ChaosPlan.from_spec(spec)
    return _active


def active_spec() -> Optional[str]:
    """Canonical spec of the active plan (worker propagation)."""
    plan = active()
    return plan.to_spec() if plan is not None else None


def fire(point: str, key: int = 0, attempt: int = 0) -> bool:
    """Decide one activation; logs and counts every hit."""
    plan = active()
    if plan is None or not plan.should_fire(point, key, attempt):
        return False
    _INJECTED.inc(point=point)
    TRACER.instant("chaos", point=point, key=key, attempt=attempt)
    log.warning("chaos: injecting %s (key=%d attempt=%d)",
                point, key, attempt)
    return True


def sleep(point: str, key: int = 0, attempt: int = 0) -> None:
    """Delay-style point: sleep the configured duration on a hit."""
    plan = active()
    if plan is None:
        return
    if fire(point, key, attempt):
        time.sleep(plan.sleep_seconds(point))


def check_raise(point: str, key: int = 0, attempt: int = 0) -> None:
    """Exception-style point: raise :class:`ChaosError` on a hit."""
    if fire(point, key, attempt):
        from ..errors import ChaosError
        raise ChaosError(f"chaos-injected failure at point {point!r}")
