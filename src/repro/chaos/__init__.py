"""Deterministic chaos injection for the campaign runtime itself.

FADES injects transient faults into the device under test; this package
injects them into the *infrastructure* — workers that crash or hang,
journal writes torn mid-line, compilations that fail — from a seeded
:class:`ChaosPlan` so every failure is reproducible.  The runtime's
hardening (watchdog deadlines, poison-fault quarantine, journal fsck,
backend fallback) is tested exclusively through these fault points.

Usage::

    from repro import chaos

    chaos.install(chaos.ChaosPlan.from_spec("seed=7;worker_hang:index=5"))
    ...
    chaos.clear()

Instrumented call sites use :func:`fire` / :func:`sleep` /
:func:`check_raise`, which are no-ops when no plan is active.
"""

from .harness import (ENV_VAR, active, active_spec, check_raise, clear,
                      fire, install, sleep)
from .plan import POINTS, SLEEP_POINTS, ChaosPlan, ChaosRule

__all__ = [
    "ChaosPlan",
    "ChaosRule",
    "POINTS",
    "SLEEP_POINTS",
    "ENV_VAR",
    "install",
    "clear",
    "active",
    "active_spec",
    "fire",
    "sleep",
    "check_raise",
]
