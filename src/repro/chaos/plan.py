"""Deterministic chaos plans: *which* runtime fault fires *where*.

A :class:`ChaosPlan` is a seeded description of runtime faults to inject
into the campaign infrastructure itself — the same discipline FADES
applies to the device under test, turned on the scheduler, the journal
and the compiled backend.  Decisions are pure functions of
``(seed, point, key, attempt)``: no clocks, no per-process counters in
the decision itself — so a plan fires at the same places whether the
campaign runs serial, sharded or resumed, and a respawned worker
re-deriving the same decision gets the same answer.

Spec syntax (CLI ``--chaos`` / env ``REPRO_CHAOS``)::

    seed=7;worker_hang:index=5;worker_crash:index=3:always;torn_write:p=0.5

``;`` separates terms.  ``seed=<int>`` seeds the decision hash; every
other term names a fault point with ``:``-separated options:

``p=<float>``
    Fire probability per decision (default 1.0).
``index=<int>``
    Restrict the point to one decision key (e.g. one fault index).
``always``
    Fire on every attempt.  The default fires only on attempt 0, so a
    retried shard (or a resumed journal append) runs clean — the chaos
    clears itself exactly like a transient fault.
``limit=<int>``
    Absolute per-process fire cap.
``s=<float>``
    Sleep duration for :data:`SLEEP_POINTS` (default 0.25 s).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..errors import ChaosError

#: The named fault points threaded through the runtime.
POINTS: Tuple[str, ...] = (
    "worker_crash",    # worker process exits mid-shard (scheduler)
    "worker_hang",     # worker stops making progress (scheduler watchdog)
    "slow_result",     # worker delivers late but within the deadline
    "torn_write",      # journal append is cut mid-line and the process dies
    "corrupt_record",  # journal line lands whole but bit-rotted (bad CRC)
    "compile_fail",    # compiled-backend compilation raises (fallback seam)
)

#: Points whose effect is a delay rather than a failure.
SLEEP_POINTS: Tuple[str, ...] = ("slow_result",)

_DEFAULT_SLEEP_S = 0.25


@dataclass(frozen=True)
class ChaosRule:
    """Activation rule for one fault point."""

    point: str
    p: float = 1.0
    index: Optional[int] = None
    always: bool = False
    limit: Optional[int] = None
    seconds: float = _DEFAULT_SLEEP_S

    def term(self) -> str:
        """Render back to one spec term (inverse of :func:`_parse_term`)."""
        parts = [self.point]
        if self.p != 1.0:
            parts.append(f"p={self.p:g}")
        if self.index is not None:
            parts.append(f"index={self.index}")
        if self.always:
            parts.append("always")
        if self.limit is not None:
            parts.append(f"limit={self.limit}")
        if self.seconds != _DEFAULT_SLEEP_S:
            parts.append(f"s={self.seconds:g}")
        return ":".join(parts)


def _parse_term(term: str) -> ChaosRule:
    name, _, rest = term.partition(":")
    name = name.strip()
    if name not in POINTS:
        raise ChaosError(
            f"unknown chaos point {name!r} (known: {', '.join(POINTS)})")
    rule = ChaosRule(point=name)
    for option in filter(None, (part.strip()
                                for part in rest.split(":") if rest)):
        key, _, value = option.partition("=")
        try:
            if key == "p":
                rule = replace(rule, p=float(value))
            elif key == "index":
                rule = replace(rule, index=int(value, 0))
            elif key == "always":
                rule = replace(rule, always=True)
            elif key == "limit":
                rule = replace(rule, limit=int(value, 0))
            elif key == "s":
                rule = replace(rule, seconds=float(value))
            else:
                raise ChaosError(
                    f"unknown chaos option {key!r} in term {term!r}")
        except ValueError as error:
            raise ChaosError(
                f"malformed chaos option {option!r}: {error}") from error
    if not 0.0 <= rule.p <= 1.0:
        raise ChaosError(f"chaos probability must be in [0, 1], got {rule.p}")
    return rule


def _mix(seed: int, point: str, key: int, attempt: int) -> int:
    """Deterministic 31-bit hash of one decision coordinate."""
    mixed = (seed & 0x7FFFFFFF) * 0x9E3779B1
    mixed ^= zlib.crc32(point.encode("utf-8"))
    mixed = (mixed + (key + 1) * 0x85EBCA6B) & 0xFFFFFFFF
    mixed = (mixed + (attempt + 1) * 0xC2B2AE35) & 0xFFFFFFFF
    mixed ^= mixed >> 15
    mixed = (mixed * 0x2C1B3C6D) & 0xFFFFFFFF
    mixed ^= mixed >> 12
    return mixed & 0x7FFFFFFF


@dataclass
class ChaosPlan:
    """A seeded set of :class:`ChaosRule` activations.

    The per-process ``_fired`` tally only enforces ``limit`` caps and
    feeds diagnostics; the fire/no-fire decision itself is stateless.
    """

    seed: int = 0
    rules: Dict[str, ChaosRule] = field(default_factory=dict)
    _fired: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_spec(cls, spec: str) -> "ChaosPlan":
        """Parse the ``--chaos`` spec syntax (see module docstring)."""
        plan = cls()
        for term in filter(None, (part.strip()
                                  for part in spec.split(";"))):
            if term.startswith("seed="):
                try:
                    plan.seed = int(term[5:], 0)
                except ValueError as error:
                    raise ChaosError(
                        f"malformed chaos seed {term!r}") from error
                continue
            rule = _parse_term(term)
            plan.rules[rule.point] = rule
        if not plan.rules:
            raise ChaosError(f"chaos spec {spec!r} names no fault points")
        return plan

    def to_spec(self) -> str:
        """Canonical spec string (env propagation to spawned workers)."""
        terms = [f"seed={self.seed}"]
        terms.extend(self.rules[point].term()
                     for point in sorted(self.rules))
        return ";".join(terms)

    def should_fire(self, point: str, key: int = 0,
                    attempt: int = 0) -> bool:
        """Decide (and account) one fault-point activation."""
        rule = self.rules.get(point)
        if rule is None:
            return False
        if rule.index is not None and key != rule.index:
            return False
        if not rule.always and attempt > 0:
            return False
        fired = self._fired.get(point, 0)
        if rule.limit is not None and fired >= rule.limit:
            return False
        if rule.p < 1.0:
            draw = _mix(self.seed, point, key, attempt) / float(1 << 31)
            if draw >= rule.p:
                return False
        self._fired[point] = fired + 1
        return True

    def sleep_seconds(self, point: str) -> float:
        rule = self.rules.get(point)
        return rule.seconds if rule is not None else 0.0

    def fired(self, point: str) -> int:
        """How many times *point* fired in this process."""
        return self._fired.get(point, 0)
