"""Campaign execution runtime (R): parallel campaigns, resume, metrics.

The paper's FADES tool exists to make fault-injection campaigns fast;
this subsystem makes the reproduction's campaigns fast *and durable*:

* :mod:`repro.runtime.jobspec` — picklable campaign descriptions and the
  per-fault seed derivation behind the determinism contract;
* :mod:`repro.runtime.scheduler` — shard planning and the worker pool
  (crash detection, retry, respawn);
* :mod:`repro.runtime.journal` — the append-only JSONL result store
  enabling crash-safe checkpoint/resume, with per-line CRC integrity
  checking (``repro journal fsck``);
* :mod:`repro.runtime.diskcache` — opt-in on-disk caches
  (``REPRO_CACHE_DIR``) with atomic writes and stale-lock recovery;
* :mod:`repro.runtime.metrics` — throughput and per-phase wall-clock
  versus emulated-time accounting, with progress callbacks;
* :mod:`repro.runtime.liveobs` — the live-observability coordinator
  (time-series sampler, alert engine, ``--serve-obs`` HTTP exporter)
  polled at the engine's batch barriers;
* :mod:`repro.runtime.engine` — the public API:
  :func:`~repro.runtime.engine.run_campaign` and
  :func:`~repro.runtime.engine.resume_campaign`.

The engine dispatches incrementally: shard batches stream through a
persistent worker pool with a statistical stopping controller
(:mod:`repro.faultload`) consulted at batch barriers, so adaptive
campaigns stop as soon as their confidence target is met.  Fixed-budget
campaigns are the degenerate single-batch schedule and behave exactly
as they always have.
"""

from .engine import resume_campaign, run_campaign
from .jobspec import (CampaignJobSpec, DEFAULT_CHECKPOINT_INTERVAL,
                      JobRunner, build_campaign, derive_fault_seed,
                      record_from_result, result_from_record)
from .journal import (JOURNAL_VERSION, JournalScan, JournalState,
                      JournalWriter, check_compatible, read_journal,
                      repair_journal, scan_journal)
from .liveobs import CampaignObservability
from .metrics import CampaignMetrics, MetricsSnapshot, ProgressCallback
from .scheduler import MAX_SHARD_SIZE, Shard, WorkerPool, plan_shards

__all__ = [
    "run_campaign",
    "resume_campaign",
    "CampaignJobSpec",
    "DEFAULT_CHECKPOINT_INTERVAL",
    "JobRunner",
    "build_campaign",
    "derive_fault_seed",
    "record_from_result",
    "result_from_record",
    "JOURNAL_VERSION",
    "JournalScan",
    "JournalState",
    "JournalWriter",
    "check_compatible",
    "read_journal",
    "repair_journal",
    "scan_journal",
    "CampaignObservability",
    "CampaignMetrics",
    "MetricsSnapshot",
    "ProgressCallback",
    "MAX_SHARD_SIZE",
    "Shard",
    "WorkerPool",
    "plan_shards",
]
