"""Append-only JSONL result journal with crash-safe resume.

The journal is the campaign's durable state.  Line one is a header
carrying the full :class:`~repro.runtime.jobspec.CampaignJobSpec`; every
subsequent line is one per-experiment record (see
:func:`repro.runtime.jobspec.record_from_result`) or, after a campaign
completes, a summary line with the aggregate tally.

Crash safety relies on two properties:

* records are appended and fsync'd as they arrive, so a killed process
  loses at most the experiments whose records were still in flight;
* a torn final line (the classic partial-write signature of a crash) is
  silently dropped on read — the experiment simply re-runs on resume.

Resuming is therefore trivial: read the journal, skip every fault index
that already has a record, run the rest, append.  Records are keyed by
fault index; because the engine's determinism contract makes every
experiment a pure function of (spec, seed, index), a re-run of a lost
index reproduces exactly the record that was lost.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import JournalError
from .jobspec import CampaignJobSpec

JOURNAL_VERSION = 1


@dataclass
class JournalState:
    """Everything a journal file currently holds."""

    header: Optional[Dict] = None
    records: Dict[int, Dict] = field(default_factory=dict)
    summary: Optional[Dict] = None
    #: Early-stopping decision of an adaptive campaign (latest wins):
    #: stop reason, experiment count and achieved confidence intervals.
    stop: Optional[Dict] = None
    dropped_lines: int = 0

    @property
    def jobspec(self) -> CampaignJobSpec:
        if self.header is None:
            raise JournalError("journal has no header line")
        return CampaignJobSpec.from_dict(self.header.get("jobspec", {}))

    def done_indices(self, count: int) -> Dict[int, Dict]:
        """Journaled records that fall inside the current faultload."""
        return {index: record for index, record in self.records.items()
                if 0 <= index < count}


def read_journal(path: str) -> JournalState:
    """Parse a journal file; a missing file reads as an empty state.

    Malformed lines are dropped rather than fatal: a torn tail line is
    the expected crash signature, and losing a record only means one
    deterministic experiment re-runs on resume.
    """
    state = JournalState()
    if not os.path.exists(path):
        return state
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                state.dropped_lines += 1
                continue
            kind = entry.get("type")
            if kind == "header":
                if state.header is None:
                    state.header = entry
            elif kind == "record":
                index = entry.get("index")
                if isinstance(index, int):
                    state.records[index] = entry
            elif kind == "summary":
                state.summary = entry
            elif kind == "stop":
                state.stop = entry
            else:
                state.dropped_lines += 1
    return state


def check_compatible(state: JournalState, jobspec: CampaignJobSpec,
                     path: str) -> None:
    """Refuse to mix two different campaigns in one journal file."""
    if state.header is None:
        return
    recorded = state.header.get("jobspec")
    if recorded != jobspec.to_dict():
        raise JournalError(
            f"{path}: journal belongs to a different campaign "
            f"(label {CampaignJobSpec.from_dict(recorded or {}).display_label()!r}); "
            "use 'repro resume' or pick a fresh journal path")


class JournalWriter:
    """Appends header/record/summary lines with per-append durability."""

    def __init__(self, path: str, jobspec: CampaignJobSpec,
                 state: Optional[JournalState] = None):
        self.path = path
        state = state if state is not None else read_journal(path)
        check_compatible(state, jobspec, path)
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")
        if state.header is None:
            self._append({"type": "header", "version": JOURNAL_VERSION,
                          "jobspec": jobspec.to_dict()})

    def _append(self, entry: Dict) -> None:
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append_record(self, record: Dict) -> None:
        entry = dict(record)
        entry["type"] = "record"
        self._append(entry)

    def append_stop(self, decision: Dict) -> None:
        """Record an adaptive campaign's stopping decision.

        Written before the summary so a resumed early-stopped campaign
        knows the achieved sample size without replaying the stopping
        rule; informational for fixed-budget readers (old journals
        simply never contain one).
        """
        entry = dict(decision)
        entry["type"] = "stop"
        self._append(entry)

    def append_summary(self, counts, total_emulation_s: float,
                       wall_s: float) -> None:
        """Terminal line: lets readers spot a finished campaign at a
        glance (resume treats it as informational only)."""
        self._append({
            "type": "summary",
            "failure": counts.failure,
            "latent": counts.latent,
            "silent": counts.silent,
            "total_emulation_s": total_emulation_s,
            "wall_s": wall_s,
        })

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
