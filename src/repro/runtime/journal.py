"""Append-only JSONL result journal with crash-safe resume and fsck.

The journal is the campaign's durable state.  Line one is a header
carrying the full :class:`~repro.runtime.jobspec.CampaignJobSpec`; every
subsequent line is one per-experiment record (see
:func:`repro.runtime.jobspec.record_from_result`) or, after a campaign
completes, a summary line with the aggregate tally.

Crash safety relies on three properties:

* records are appended and fsync'd as they arrive, so a killed process
  loses at most the experiments whose records were still in flight;
* every line carries a CRC32 of its canonical JSON payload, so silent
  bit-rot is *detected* rather than resumed from;
* a torn or unverifiable **final** line (the classic partial-write
  signature of a crash) is dropped on read — and truncated away before
  any append, so a torn tail can never swallow the next record — while
  an unverifiable **interior** line means data between it and the tail
  may be wrong, so reading refuses with a diagnosis until
  ``repro journal fsck --repair`` truncates to the last verifiable
  prefix.

Resuming is therefore trivial: read the journal, skip every fault index
that already has a record, run the rest, append.  Records are keyed by
fault index; because the engine's determinism contract makes every
experiment a pure function of (spec, seed, index), a re-run of a lost
index reproduces exactly the record that was lost.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import chaos
from ..errors import ChaosError, JournalError
# Canonical home of the CRC-per-line convention is the observability
# layer (the .tsdb sidecar shares it); re-exported here because the
# journal is where existing callers know to find it.
from ..obs.timeseries import line_crc, seal_line
from .jobspec import CampaignJobSpec

__all__ = [
    "JOURNAL_VERSION", "line_crc", "seal_line", "LineIssue",
    "JournalScan", "scan_journal", "repair_journal", "JournalState",
    "read_journal", "check_compatible", "JournalWriter",
]

JOURNAL_VERSION = 1


@dataclass(frozen=True)
class LineIssue:
    """One line that failed integrity checking."""

    line_no: int  # 1-based
    offset: int   # byte offset of the line start (truncation point)
    kind: str     # "torn" (not valid JSON) | "corrupt" (CRC mismatch)
    detail: str


@dataclass
class JournalScan:
    """Integrity verdict over every line of a journal file."""

    path: str
    size: int = 0
    lines: int = 0
    checked: int = 0  # lines whose CRC was present and verified
    legacy: int = 0   # valid lines without a CRC (pre-integrity era)
    issues: List[LineIssue] = field(default_factory=list)

    @property
    def torn_tail(self) -> Optional[LineIssue]:
        """The file's final line, when it is the (only) bad one."""
        if len(self.issues) == 1 and self.issues[0].line_no == self.lines:
            return self.issues[0]
        return None

    @property
    def interior(self) -> List[LineIssue]:
        """Bad lines that verified data follows (not crash signatures)."""
        tail = self.torn_tail
        return [issue for issue in self.issues if issue is not tail]

    def verdict(self) -> str:
        if not self.issues:
            return "clean"
        if self.torn_tail is not None:
            return "torn-tail"
        return "corrupt"

    def truncate_offset(self) -> Optional[int]:
        """Byte offset of the last verifiable prefix (repair point)."""
        if not self.issues:
            return None
        return self.issues[0].offset

    def to_dict(self) -> Dict:
        return {"path": self.path, "verdict": self.verdict(),
                "size": self.size, "lines": self.lines,
                "checked": self.checked, "legacy": self.legacy,
                "issues": [{"line": issue.line_no,
                            "offset": issue.offset,
                            "kind": issue.kind,
                            "detail": issue.detail}
                           for issue in self.issues]}


def _scan_lines(path: str) -> Tuple[List[Dict], JournalScan]:
    """Walk a journal byte-exactly: entries that verify + the verdict."""
    scan = JournalScan(path=path)
    entries: List[Dict] = []
    if not os.path.exists(path):
        return entries, scan
    with open(path, "rb") as handle:
        data = handle.read()
    scan.size = len(data)
    offset = 0
    for raw in data.split(b"\n"):
        line_start, offset = offset, offset + len(raw) + 1
        if not raw.strip():
            continue
        scan.lines += 1
        try:
            entry = json.loads(raw.decode("utf-8"))
            if not isinstance(entry, dict):
                raise ValueError("journal line is not an object")
        except (ValueError, UnicodeDecodeError) as error:
            scan.issues.append(LineIssue(
                line_no=scan.lines, offset=line_start, kind="torn",
                detail=f"not a JSON object: {error}"))
            continue
        if "crc" in entry:
            expected = line_crc(entry)
            if entry["crc"] != expected:
                scan.issues.append(LineIssue(
                    line_no=scan.lines, offset=line_start,
                    kind="corrupt",
                    detail=f"CRC mismatch (recorded {entry['crc']!r}, "
                           f"computed {expected!r})"))
                continue
            scan.checked += 1
        else:
            scan.legacy += 1
        entries.append(entry)
    return entries, scan


def scan_journal(path: str) -> JournalScan:
    """Integrity-check a journal without interpreting it (``fsck``)."""
    return _scan_lines(path)[1]


def repair_journal(path: str) -> Tuple[JournalScan, int]:
    """Truncate a journal to its last verifiable prefix.

    Returns the pre-repair scan and the number of bytes dropped (zero
    when the journal was already clean).
    """
    scan = scan_journal(path)
    offset = scan.truncate_offset()
    if offset is None:
        return scan, 0
    with open(path, "r+b") as handle:
        handle.truncate(offset)
    return scan, scan.size - offset


@dataclass
class JournalState:
    """Everything a journal file currently holds."""

    header: Optional[Dict] = None
    records: Dict[int, Dict] = field(default_factory=dict)
    summary: Optional[Dict] = None
    #: Early-stopping decision of an adaptive campaign (latest wins):
    #: stop reason, experiment count and achieved confidence intervals.
    stop: Optional[Dict] = None
    #: Alert firings journalled by the live-observability layer, in
    #: append order; resume replays them so an alert that fired before
    #: a crash is not silently forgotten.
    alerts: List[Dict] = field(default_factory=list)
    dropped_lines: int = 0

    @property
    def jobspec(self) -> CampaignJobSpec:
        if self.header is None:
            raise JournalError("journal has no header line")
        return CampaignJobSpec.from_dict(self.header.get("jobspec", {}))

    def done_indices(self, count: int) -> Dict[int, Dict]:
        """Journaled records that fall inside the current faultload."""
        return {index: record for index, record in self.records.items()
                if 0 <= index < count}


def read_journal(path: str) -> JournalState:
    """Parse a journal file; a missing file reads as an empty state.

    A bad **final** line (torn write or CRC mismatch) is dropped rather
    than fatal: it is the expected crash signature, and losing a record
    only means one deterministic experiment re-runs on resume.  A bad
    **interior** line is refused with a pointer at ``repro journal
    fsck`` — verified lines follow it, so silently dropping it would
    resume from a journal whose history is provably damaged.
    """
    state = JournalState()
    entries, scan = _scan_lines(path)
    if scan.interior:
        first = scan.interior[0]
        raise JournalError(
            f"{path}: line {first.line_no} is {first.kind} "
            f"({first.detail}) but verified lines follow it; run "
            f"'repro journal fsck {path}' to inspect, or fsck "
            "--repair to truncate to the last verifiable prefix")
    if scan.torn_tail is not None:
        state.dropped_lines += 1
    for entry in entries:
        kind = entry.get("type")
        if kind == "header":
            if state.header is None:
                state.header = entry
        elif kind == "record":
            index = entry.get("index")
            if isinstance(index, int):
                state.records[index] = entry
        elif kind == "summary":
            state.summary = entry
        elif kind == "stop":
            state.stop = entry
        elif kind == "alert":
            state.alerts.append(entry)
        else:
            state.dropped_lines += 1
    return state


def check_compatible(state: JournalState, jobspec: CampaignJobSpec,
                     path: str) -> None:
    """Refuse to mix two different campaigns in one journal file."""
    if state.header is None:
        return
    recorded = state.header.get("jobspec")
    if recorded != jobspec.to_dict():
        raise JournalError(
            f"{path}: journal belongs to a different campaign "
            f"(label {CampaignJobSpec.from_dict(recorded or {}).display_label()!r}); "
            "use 'repro resume' or pick a fresh journal path")


class JournalWriter:
    """Appends header/record/summary lines with per-append durability.

    Opening the writer truncates a torn tail in place (the crash
    signature resume already tolerates): appending after one would glue
    the next record onto the partial line and turn a recoverable tail
    into interior corruption.
    """

    def __init__(self, path: str, jobspec: CampaignJobSpec,
                 state: Optional[JournalState] = None):
        self.path = path
        state = state if state is not None else read_journal(path)
        check_compatible(state, jobspec, path)
        # Chaos decisions are salted with the dropped-line count so a
        # torn_write that already fired (and was dropped on resume)
        # does not re-fire on the re-append — self-clearing, exactly
        # like the transient faults the campaign injects.
        self._chaos_salt = state.dropped_lines
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        if os.path.exists(path):
            scan = scan_journal(path)
            offset = scan.truncate_offset()
            if scan.torn_tail is not None and offset is not None:
                with open(path, "r+b") as handle:
                    handle.truncate(offset)
        self._handle = open(path, "a", encoding="utf-8")
        if state.header is None:
            self._append({"type": "header", "version": JOURNAL_VERSION,
                          "jobspec": jobspec.to_dict()})

    def _append(self, entry: Dict) -> None:
        line = seal_line(entry)
        key = entry.get("index")
        key = key if isinstance(key, int) else 0
        if chaos.fire("torn_write", key=key, attempt=self._chaos_salt):
            # A power cut mid-write: half the line lands on disk and
            # the writing process dies (ChaosError unwinds it).
            self._handle.write(line[:max(1, len(line) // 2)])
            self._handle.flush()
            os.fsync(self._handle.fileno())
            raise ChaosError(
                "chaos-injected torn journal write "
                f"(index {key}); resume to recover")
        if chaos.fire("corrupt_record", key=key,
                      attempt=self._chaos_salt):
            # Silent bit-rot: the line lands whole but its payload no
            # longer matches its CRC.
            crc = line_crc(entry)
            bad = format(int(crc, 16) ^ 0xFFFFFFFF, "08x")
            line = line.replace(f'"crc": "{crc}"', f'"crc": "{bad}"')
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append_record(self, record: Dict) -> None:
        entry = dict(record)
        entry["type"] = "record"
        self._append(entry)

    def append_stop(self, decision: Dict) -> None:
        """Record an adaptive campaign's stopping decision.

        Written before the summary so a resumed early-stopped campaign
        knows the achieved sample size without replaying the stopping
        rule; informational for fixed-budget readers (old journals
        simply never contain one).
        """
        entry = dict(decision)
        entry["type"] = "stop"
        self._append(entry)

    def append_alert(self, event: Dict) -> None:
        """Journal one alert firing (see :mod:`repro.obs.alerts`).

        Alerts are part of the campaign's durable story: a resumed
        campaign replays them into the alert engine's history instead
        of pretending the incident never happened.
        """
        entry = dict(event)
        entry["type"] = "alert"
        self._append(entry)

    def append_interrupt(self) -> None:
        """Terminal line of an interrupted campaign (SIGINT/SIGTERM).

        Carries no ``n``: resume must re-derive the target from the
        spec and keep going, unlike a converged/budget stop line.
        """
        self._append({"type": "stop", "reason": "interrupted"})

    def append_summary(self, counts, total_emulation_s: float,
                       wall_s: float) -> None:
        """Terminal line: lets readers spot a finished campaign at a
        glance (resume treats it as informational only)."""
        entry = {
            "type": "summary",
            "failure": counts.failure,
            "latent": counts.latent,
            "silent": counts.silent,
            "total_emulation_s": total_emulation_s,
            "wall_s": wall_s,
        }
        quarantined = getattr(counts, "quarantined", 0)
        if quarantined:
            entry["quarantined"] = quarantined
        self._append(entry)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
