"""Shard planning and the multiprocessing worker pool.

The scheduler splits a campaign's pending fault indices into
:class:`Shard` units and drives them through worker processes.  Design
points:

* **No shared simulator state.**  Workers receive only the picklable
  :class:`~repro.runtime.jobspec.CampaignJobSpec` and rebuild their own
  campaign; shards carry bare fault indices.
* **Parent-side assignment.**  Each worker holds at most one shard at a
  time, so when a worker dies the parent knows *exactly* which shard was
  in flight — no claim/ack protocol, no lost-message races.
* **One pipe per worker, no shared locks.**  Parent and worker talk
  over a private duplex :func:`multiprocessing.Pipe`.  A shared result
  ``Queue`` would serialise every worker's messages through one
  cross-process write lock held by a background feeder thread — a
  worker killed mid-send would leave that lock acquired forever and
  deadlock the survivors.  With a pipe, messages are sent synchronously
  from the worker's main thread: a crash inside experiment code can
  never interrupt a send, and a poisoned channel can only ever be the
  dead worker's own.
* **Retry on worker crash.**  A shard whose worker died (or raised) goes
  back to the front of the backlog and a replacement worker is spawned;
  a shard that fails more than ``max_retries`` times aborts the campaign
  with :class:`~repro.errors.SchedulerError`.  Before the dead worker is
  discarded, any complete result messages still sitting in its pipe are
  dispatched so finished shards are not re-run.

Shards are deliberately small (see :func:`plan_shards`): results stream
back to the journal at shard granularity, so smaller shards mean finer
crash-safety and better load balance at a modest queueing cost.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from multiprocessing import connection as mp_connection
from collections import deque
from dataclasses import dataclass
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from ..errors import SchedulerError
from ..obs.metrics import REGISTRY
from ..obs.tracing import TRACER
from .jobspec import CampaignJobSpec, JobRunner

#: Callback fed each worker's drained span batch: (worker_id, events).
SpanCallback = Callable[[int, List[Dict]], None]

#: Upper bound on shard size: keeps the journal hot even on huge
#: campaigns (a crash loses at most this many in-flight experiments
#: per worker).
MAX_SHARD_SIZE = 16

#: How long the event loop blocks on the worker pipes before checking
#: worker liveness.
_POLL_SECONDS = 0.1

#: How often an idle worker checks whether its parent is still alive
#: (a SIGKILLed parent cannot clean up; orphans must exit on their own).
_ORPHAN_POLL_SECONDS = 5.0


@dataclass(frozen=True)
class Shard:
    """One schedulable unit: a batch of fault indices."""

    shard_id: int
    indices: Tuple[int, ...]


def plan_shards(indices: Sequence[int], workers: int,
                shard_size: Optional[int] = None,
                first_id: int = 0) -> List[Shard]:
    """Split pending fault indices into shards.

    The default size targets ~4 shards per worker (load balance against
    stragglers) capped at :data:`MAX_SHARD_SIZE` (journal granularity).
    ``first_id`` offsets the shard ids so successive batches of one
    streamed campaign stay uniquely identified.
    """
    if not indices:
        return []
    if shard_size is None:
        per_worker = -(-len(indices) // (max(1, workers) * 4))
        shard_size = max(1, min(MAX_SHARD_SIZE, per_worker))
    shard_size = max(1, shard_size)
    return [Shard(shard_id=first_id + n, indices=tuple(chunk))
            for n, chunk in enumerate(
                indices[start:start + shard_size]
                for start in range(0, len(indices), shard_size))]


def _mp_context():
    """Prefer fork (workers skip re-importing the package); fall back to
    the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _worker_main(worker_id: int, jobspec: CampaignJobSpec, conn,
                 trace: bool = False) -> None:
    """Worker process body: build one campaign, then drain shards."""
    parent = os.getppid()
    # Under fork the child inherits the parent's tracer events and
    # registry values; drop both so nothing is double-reported, and give
    # this process its own span-stream id (tid 0 is the parent's).
    TRACER.reset(enabled=trace, tid=worker_id + 1)
    REGISTRY.reset()
    try:
        runner = JobRunner(jobspec)
    except BaseException:
        conn.send(("fatal", worker_id, traceback.format_exc()))
        return
    conn.send(("ready", worker_id))
    while True:
        while not conn.poll(_ORPHAN_POLL_SECONDS):
            # Reparented (original parent died without cleanup): exit
            # rather than wait forever on a pipe no one will feed.
            if os.getppid() != parent:
                return
        try:
            shard = conn.recv()
        except (EOFError, OSError):
            return
        if shard is None:
            return
        try:
            records = runner.run_indices(shard.indices)
        except BaseException:
            # Observability state of the failed shard is discarded: the
            # shard will re-run in full, so shipping partial spans or
            # counts would double-report after the retry.
            TRACER.reset(enabled=trace, tid=worker_id + 1)
            REGISTRY.reset()
            conn.send(("error", worker_id, shard.shard_id,
                       traceback.format_exc()))
        else:
            spans = TRACER.drain() if trace else []
            metrics_state = REGISTRY.to_state()
            REGISTRY.reset()
            conn.send(("result", worker_id, shard.shard_id,
                       records, spans, metrics_state))


class _Worker:
    """Parent-side handle: process + its private message pipe."""

    def __init__(self, ctx, worker_id: int, jobspec: CampaignJobSpec,
                 trace: bool = False):
        self.worker_id = worker_id
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.shard: Optional[Shard] = None
        self.ready = False
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, jobspec, child_conn, trace),
            daemon=True)
        self.process.start()
        # The parent must not hold the child's end open, or it would
        # never see EOF after the child exits.
        child_conn.close()

    def assign(self, shard: Shard) -> None:
        self.shard = shard
        self._send(shard)

    def release(self) -> Optional[Shard]:
        shard, self.shard = self.shard, None
        return shard

    def stop(self) -> None:
        if self.process.is_alive():
            self._send(None)

    def _send(self, obj) -> None:
        try:
            self.conn.send(obj)
        except (OSError, ValueError):
            # Worker died; liveness checking requeues its shard.
            pass

    def reap(self, timeout: float = 2.0) -> None:
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)
        self.conn.close()


class WorkerPool:
    """Runs shards of one job spec across worker processes."""

    def __init__(self, jobspec: CampaignJobSpec, workers: int,
                 max_retries: int = 2,
                 on_retry: Optional[Callable[[Shard], None]] = None,
                 trace: bool = False):
        if workers < 1:
            raise SchedulerError("worker pool needs at least one worker")
        self.jobspec = jobspec
        self.workers = workers
        self.max_retries = max_retries
        self.on_retry = on_retry
        self.trace = trace
        self.retries = 0

    def run(self, shards: Sequence[Shard],
            on_records: Callable[[Shard, List[Dict]], None],
            on_spans: Optional[SpanCallback] = None) -> None:
        """Execute every shard, streaming record batches to
        ``on_records`` as workers finish them (arrival order).

        Worker observability ships with each result: span batches go to
        ``on_spans`` (when tracing), metrics snapshots merge into this
        process's registry.
        """
        self.run_batches(iter([list(shards)]), on_records, on_spans)

    def run_batches(self, batches: Iterable[Sequence[Shard]],
                    on_records: Callable[[Shard, List[Dict]], None],
                    on_spans: Optional[SpanCallback] = None) -> None:
        """Execute a stream of shard batches over one persistent pool.

        Each batch is fully drained before the next one is pulled from
        ``batches`` — that pull is the campaign's batch barrier, where a
        stopping controller can extend the stream or cut it short by
        exhausting the iterator.  Workers persist across batches (each
        one rebuilt its campaign exactly once) and idle at the barrier.
        Shard ids must be unique across the whole stream (see
        :func:`plan_shards`'s ``first_id``).
        """
        ctx = _mp_context()
        backlog: deque = deque()
        by_id: Dict[int, Shard] = {}
        attempts: Dict[int, int] = {}
        outstanding: set = set()
        pool: Dict[int, _Worker] = {}
        next_worker_id = 0

        def spawn() -> None:
            nonlocal next_worker_id
            worker = _Worker(ctx, next_worker_id, self.jobspec,
                             trace=self.trace)
            pool[next_worker_id] = worker
            next_worker_id += 1

        def feed(worker: _Worker) -> None:
            if backlog and worker.ready and worker.shard is None:
                worker.assign(backlog.popleft())

        def requeue(shard: Shard, reason: str) -> None:
            attempts[shard.shard_id] = attempts.get(shard.shard_id, 0) + 1
            if attempts[shard.shard_id] > self.max_retries:
                raise SchedulerError(
                    f"shard {shard.shard_id} failed "
                    f"{attempts[shard.shard_id]} times; last cause:\n"
                    f"{reason}")
            self.retries += 1
            if self.on_retry is not None:
                self.on_retry(shard)
            backlog.appendleft(shard)

        try:
            for shards in batches:
                if not shards:
                    continue
                for shard in shards:
                    if shard.shard_id in by_id:
                        raise SchedulerError(
                            f"duplicate shard id {shard.shard_id} "
                            "across batches")
                    by_id[shard.shard_id] = shard
                    backlog.append(shard)
                    outstanding.add(shard.shard_id)
                while len(pool) < min(self.workers, len(outstanding)):
                    spawn()
                for worker in pool.values():
                    feed(worker)
                while outstanding:
                    self._drain(pool, outstanding, by_id,
                                on_records, on_spans, feed, requeue)
                    self._check_liveness(pool, outstanding, by_id,
                                         backlog, on_records, on_spans,
                                         requeue, spawn, feed)
        finally:
            for worker in pool.values():
                worker.stop()
            for worker in pool.values():
                worker.reap()

    # -- event loop pieces ---------------------------------------------
    def _dispatch(self, message, worker, outstanding, by_id, on_records,
                  on_spans, feed, requeue, alive: bool = True) -> None:
        """Apply one worker message to the pool state.

        ``alive=False`` is the post-mortem drain of a dead worker's
        pipe: results still count, but the worker gets no further work.
        """
        kind = message[0]
        if kind == "ready":
            worker.ready = True
            if alive:
                feed(worker)
        elif kind == "result":
            shard_id, records = message[2], message[3]
            spans, metrics_state = message[4], message[5]
            worker.release()
            if shard_id in outstanding:
                outstanding.discard(shard_id)
                if spans and on_spans is not None:
                    on_spans(worker.worker_id, spans)
                if metrics_state is not None:
                    REGISTRY.merge_state(metrics_state)
                on_records(by_id[shard_id], records)
            if alive:
                # An idle worker stays alive: the batch stream may
                # carry more work after the barrier.  Teardown happens
                # once the stream is exhausted (run_batches' finally).
                feed(worker)
        elif kind == "error":
            shard_id, reason = message[2], message[3]
            worker.release()
            if shard_id in outstanding:
                requeue(by_id[shard_id], reason)
            if alive:
                feed(worker)
        elif kind == "fatal":
            raise SchedulerError(
                f"worker {worker.worker_id} failed to start:\n"
                f"{message[2]}")

    def _pending_messages(self, conn):
        """Yield complete messages waiting on a worker pipe."""
        while True:
            try:
                if not conn.poll(0):
                    return
                yield conn.recv()
            except (EOFError, OSError):
                return  # dead worker: liveness requeues its shard

    def _drain(self, pool, outstanding, by_id, on_records, on_spans,
               feed, requeue) -> None:
        """Handle every pending worker message (blocking briefly)."""
        conns = {worker.conn: worker for worker in pool.values()}
        if not conns:
            return
        for conn in mp_connection.wait(list(conns),
                                       timeout=_POLL_SECONDS):
            for message in self._pending_messages(conn):
                self._dispatch(message, conns[conn], outstanding, by_id,
                               on_records, on_spans, feed, requeue)

    def _check_liveness(self, pool, outstanding, by_id, backlog,
                        on_records, on_spans, requeue, spawn,
                        feed) -> None:
        """Requeue shards of dead workers; keep the pool staffed."""
        for worker_id in [wid for wid, worker in pool.items()
                          if not worker.process.is_alive()]:
            worker = pool.pop(worker_id)
            # Dispatch any complete messages the worker shipped before
            # dying, so its finished shards are not re-run.  Sends are
            # synchronous in the worker, so a crash in experiment code
            # cannot leave a torn message behind.
            for message in self._pending_messages(worker.conn):
                self._dispatch(message, worker, outstanding, by_id,
                               on_records, on_spans, feed, requeue,
                               alive=False)
            shard = worker.release()
            if shard is not None and shard.shard_id in outstanding:
                requeue(shard, f"worker {worker_id} died "
                               f"(exit code {worker.process.exitcode})")
            worker.reap(timeout=0.5)
        while outstanding and len(pool) < min(self.workers,
                                              len(outstanding)):
            spawn()
        # A requeue may have refilled the backlog after a worker went
        # idle; hand those shards out again.
        for worker in pool.values():
            if worker.ready and worker.shard is None and backlog:
                feed(worker)
