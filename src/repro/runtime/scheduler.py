"""Shard planning and the multiprocessing worker pool.

The scheduler splits a campaign's pending fault indices into
:class:`Shard` units and drives them through worker processes.  Design
points:

* **No shared simulator state.**  Workers receive only the picklable
  :class:`~repro.runtime.jobspec.CampaignJobSpec` and rebuild their own
  campaign; shards carry bare fault indices.
* **Parent-side assignment.**  Each worker has a private job queue and
  holds at most one shard at a time, so when a worker dies the parent
  knows *exactly* which shard was in flight — no claim/ack protocol, no
  lost-message races.
* **Retry on worker crash.**  A shard whose worker died (or raised) goes
  back to the front of the backlog and a replacement worker is spawned;
  a shard that fails more than ``max_retries`` times aborts the campaign
  with :class:`~repro.errors.SchedulerError`.

Shards are deliberately small (see :func:`plan_shards`): results stream
back to the journal at shard granularity, so smaller shards mean finer
crash-safety and better load balance at a modest queueing cost.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SchedulerError
from .jobspec import CampaignJobSpec, JobRunner

#: Upper bound on shard size: keeps the journal hot even on huge
#: campaigns (a crash loses at most this many in-flight experiments
#: per worker).
MAX_SHARD_SIZE = 16

#: How long the event loop blocks on the result queue before checking
#: worker liveness.
_POLL_SECONDS = 0.1

#: How often an idle worker checks whether its parent is still alive
#: (a SIGKILLed parent cannot clean up; orphans must exit on their own).
_ORPHAN_POLL_SECONDS = 5.0


@dataclass(frozen=True)
class Shard:
    """One schedulable unit: a batch of fault indices."""

    shard_id: int
    indices: Tuple[int, ...]


def plan_shards(indices: Sequence[int], workers: int,
                shard_size: Optional[int] = None) -> List[Shard]:
    """Split pending fault indices into shards.

    The default size targets ~4 shards per worker (load balance against
    stragglers) capped at :data:`MAX_SHARD_SIZE` (journal granularity).
    """
    if not indices:
        return []
    if shard_size is None:
        per_worker = -(-len(indices) // (max(1, workers) * 4))
        shard_size = max(1, min(MAX_SHARD_SIZE, per_worker))
    shard_size = max(1, shard_size)
    return [Shard(shard_id=n, indices=tuple(chunk))
            for n, chunk in enumerate(
                indices[start:start + shard_size]
                for start in range(0, len(indices), shard_size))]


def _mp_context():
    """Prefer fork (workers skip re-importing the package); fall back to
    the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _worker_main(worker_id: int, jobspec: CampaignJobSpec,
                 job_queue, result_queue) -> None:
    """Worker process body: build one campaign, then drain shards."""
    parent = os.getppid()
    try:
        runner = JobRunner(jobspec)
    except BaseException:
        result_queue.put(("fatal", worker_id, traceback.format_exc()))
        return
    result_queue.put(("ready", worker_id))
    while True:
        try:
            shard = job_queue.get(timeout=_ORPHAN_POLL_SECONDS)
        except queue_module.Empty:
            # Reparented (original parent died without cleanup): exit
            # rather than wait forever on a queue no one will feed.
            if os.getppid() != parent:
                return
            continue
        if shard is None:
            return
        try:
            records = runner.run_indices(shard.indices)
        except BaseException:
            result_queue.put(("error", worker_id, shard.shard_id,
                              traceback.format_exc()))
        else:
            result_queue.put(("result", worker_id, shard.shard_id,
                              records))


class _Worker:
    """Parent-side handle: process + its private job queue."""

    def __init__(self, ctx, worker_id: int, jobspec: CampaignJobSpec,
                 result_queue):
        self.worker_id = worker_id
        self.job_queue = ctx.Queue()
        self.shard: Optional[Shard] = None
        self.ready = False
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, jobspec, self.job_queue, result_queue),
            daemon=True)
        self.process.start()

    def assign(self, shard: Shard) -> None:
        self.shard = shard
        self.job_queue.put(shard)

    def release(self) -> Optional[Shard]:
        shard, self.shard = self.shard, None
        return shard

    def stop(self) -> None:
        if self.process.is_alive():
            self.job_queue.put(None)

    def reap(self, timeout: float = 2.0) -> None:
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)


class WorkerPool:
    """Runs shards of one job spec across worker processes."""

    def __init__(self, jobspec: CampaignJobSpec, workers: int,
                 max_retries: int = 2,
                 on_retry: Optional[Callable[[Shard], None]] = None):
        if workers < 1:
            raise SchedulerError("worker pool needs at least one worker")
        self.jobspec = jobspec
        self.workers = workers
        self.max_retries = max_retries
        self.on_retry = on_retry
        self.retries = 0

    def run(self, shards: Sequence[Shard],
            on_records: Callable[[Shard, List[Dict]], None]) -> None:
        """Execute every shard, streaming record batches to
        ``on_records`` as workers finish them (arrival order)."""
        if not shards:
            return
        ctx = _mp_context()
        result_queue = ctx.Queue()
        backlog = deque(shards)
        by_id = {shard.shard_id: shard for shard in shards}
        attempts: Dict[int, int] = {}
        outstanding = set(by_id)
        pool: Dict[int, _Worker] = {}
        next_worker_id = 0

        def spawn() -> None:
            nonlocal next_worker_id
            worker = _Worker(ctx, next_worker_id, self.jobspec,
                             result_queue)
            pool[next_worker_id] = worker
            next_worker_id += 1

        def feed(worker: _Worker) -> None:
            if backlog and worker.shard is None:
                worker.assign(backlog.popleft())

        def requeue(shard: Shard, reason: str) -> None:
            attempts[shard.shard_id] = attempts.get(shard.shard_id, 0) + 1
            if attempts[shard.shard_id] > self.max_retries:
                raise SchedulerError(
                    f"shard {shard.shard_id} failed "
                    f"{attempts[shard.shard_id]} times; last cause:\n"
                    f"{reason}")
            self.retries += 1
            if self.on_retry is not None:
                self.on_retry(shard)
            backlog.appendleft(shard)

        try:
            for _ in range(min(self.workers, len(shards))):
                spawn()
            while outstanding:
                self._drain(result_queue, pool, outstanding, by_id,
                            on_records, feed, requeue)
                self._check_liveness(pool, outstanding, backlog,
                                     requeue, spawn, feed)
        finally:
            for worker in pool.values():
                worker.stop()
            for worker in pool.values():
                worker.reap()

    # -- event loop pieces ---------------------------------------------
    def _drain(self, result_queue, pool, outstanding, by_id, on_records,
               feed, requeue) -> None:
        """Handle every queued message (blocking briefly for the first)."""
        try:
            message = result_queue.get(timeout=_POLL_SECONDS)
        except queue_module.Empty:
            return
        while True:
            kind, worker_id = message[0], message[1]
            worker = pool.get(worker_id)
            if kind == "ready" and worker is not None:
                worker.ready = True
                feed(worker)
            elif kind == "result":
                shard_id, records = message[2], message[3]
                if worker is not None:
                    worker.release()
                if shard_id in outstanding:
                    outstanding.discard(shard_id)
                    on_records(by_id[shard_id], records)
                if worker is not None:
                    if outstanding:
                        feed(worker)
                    else:
                        worker.stop()
            elif kind == "error":
                shard_id, reason = message[2], message[3]
                if worker is not None:
                    worker.release()
                if shard_id in outstanding:
                    requeue(by_id[shard_id], reason)
                if worker is not None:
                    feed(worker)
            elif kind == "fatal":
                raise SchedulerError(
                    f"worker {worker_id} failed to start:\n{message[2]}")
            try:
                message = result_queue.get_nowait()
            except queue_module.Empty:
                return

    def _check_liveness(self, pool, outstanding, backlog, requeue,
                        spawn, feed) -> None:
        """Requeue shards of dead workers; keep the pool staffed."""
        for worker_id in [wid for wid, worker in pool.items()
                          if not worker.process.is_alive()]:
            worker = pool.pop(worker_id)
            shard = worker.release()
            if shard is not None and shard.shard_id in outstanding:
                requeue(shard, f"worker {worker_id} died "
                               f"(exit code {worker.process.exitcode})")
            worker.reap(timeout=0.5)
        while outstanding and len(pool) < min(self.workers,
                                              len(outstanding)):
            spawn()
        # A requeue may have refilled the backlog after a worker went
        # idle; hand those shards out again.
        for worker in pool.values():
            if worker.ready and worker.shard is None and backlog:
                feed(worker)
