"""Shard planning and the multiprocessing worker pool.

The scheduler splits a campaign's pending fault indices into
:class:`Shard` units and drives them through worker processes.  Design
points:

* **No shared simulator state.**  Workers receive only the picklable
  :class:`~repro.runtime.jobspec.CampaignJobSpec` and rebuild their own
  campaign; shards carry bare fault indices.
* **Parent-side assignment.**  Each worker holds at most one shard at a
  time, so when a worker dies the parent knows *exactly* which shard was
  in flight — no claim/ack protocol, no lost-message races.
* **One pipe per worker, no shared locks.**  Parent and worker talk
  over a private duplex :func:`multiprocessing.Pipe`.  A shared result
  ``Queue`` would serialise every worker's messages through one
  cross-process write lock held by a background feeder thread — a
  worker killed mid-send would leave that lock acquired forever and
  deadlock the survivors.  With a pipe, messages are sent synchronously
  from the worker's main thread: a crash inside experiment code can
  never interrupt a send, and a poisoned channel can only ever be the
  dead worker's own.
* **Watchdog deadlines.**  Workers heartbeat over their pipe while a
  shard runs; a worker whose last sign of life is older than the shard
  deadline (explicit ``shard_timeout``, or an EWMA of observed
  per-experiment time with a generous floor) is killed and its shard
  re-queued — a *hung* worker can no longer stall the campaign forever.
* **Retry with backoff, then quarantine.**  A shard whose worker died,
  hung or raised goes back on the backlog (exponential backoff) and a
  replacement worker is spawned.  A shard that fails past
  ``max_retries`` is *bisected* rather than aborting the campaign:
  halves re-enter the backlog with fresh retry budgets until the
  offending fault index is isolated, at which point it is handed to
  ``on_quarantine`` and the rest of the campaign proceeds.  Without a
  quarantine callback the historical behaviour — abort with
  :class:`~repro.errors.SchedulerError` — is preserved.
* **Chaos instrumentation.**  Workers re-install the parent's
  :mod:`repro.chaos` plan and honour the ``worker_crash`` /
  ``worker_hang`` / ``slow_result`` fault points, so every recovery
  path above is testable deterministically.

Shards are deliberately small (see :func:`plan_shards`): results stream
back to the journal at shard granularity, so smaller shards mean finer
crash-safety and better load balance at a modest queueing cost.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
import traceback
from multiprocessing import connection as mp_connection
from collections import deque
from dataclasses import dataclass
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from .. import chaos
from ..errors import CampaignInterrupted, SchedulerError
from ..obs import metrics as obs_metrics
from ..obs.logsetup import get_logger
from ..obs.metrics import REGISTRY
from ..obs.tracing import TRACER
from .jobspec import CampaignJobSpec, JobRunner

log = get_logger("repro.runtime.scheduler")

_HANGS = obs_metrics.counter(
    "worker_hangs_total",
    "Hung workers killed by the shard watchdog.")
_SHARD_RETRIES = obs_metrics.counter(
    "shard_retries_total",
    "Shard re-queues after a worker failure, by reason.")
_BISECTIONS = obs_metrics.counter(
    "shard_bisections_total",
    "Retry-exhausted shards split in half to isolate a poison fault.")
_WORKERS_ALIVE = obs_metrics.gauge(
    "campaign_workers_alive",
    "Live worker processes in the current campaign's pool.")

#: Callback fed each worker's drained span batch: (worker_id, events).
SpanCallback = Callable[[int, List[Dict]], None]

#: Callback for an isolated poison fault: (fault index, error fingerprint).
QuarantineCallback = Callable[[int, str], None]

#: Upper bound on shard size: keeps the journal hot even on huge
#: campaigns (a crash loses at most this many in-flight experiments
#: per worker).
MAX_SHARD_SIZE = 16

#: How long the event loop blocks on the worker pipes before checking
#: worker liveness.
_POLL_SECONDS = 0.1

#: How often an idle worker checks whether its parent is still alive
#: (a SIGKILLed parent cannot clean up; orphans must exit on their own).
_ORPHAN_POLL_SECONDS = 5.0

#: Minimum spacing between worker heartbeats while a shard runs.
_BEAT_SECONDS = 0.5

#: Watchdog floor: no shard deadline is ever tighter than this unless
#: an explicit ``shard_timeout`` says so.
_WATCHDOG_FLOOR_S = 30.0

#: Deadline headroom over the EWMA per-experiment estimate.
_WATCHDOG_FACTOR = 8.0

#: EWMA weight of the newest per-experiment time sample.
_EWMA_ALPHA = 0.3

#: Retry backoff: ``base * 2**(attempt-1)`` seconds, capped here.
_BACKOFF_CAP_S = 5.0

#: Exit code of a chaos-injected worker crash (diagnosable post-mortem).
CHAOS_CRASH_EXIT = 121

#: Bisected half-shards draw ids from here: far above any id
#: :func:`plan_shards` can produce, so splits never collide with
#: batches the campaign streams in later.
_BISECT_ID_BASE = 2 ** 32


@dataclass(frozen=True)
class Shard:
    """One schedulable unit: a batch of fault indices."""

    shard_id: int
    indices: Tuple[int, ...]


def plan_shards(indices: Sequence[int], workers: int,
                shard_size: Optional[int] = None,
                first_id: int = 0) -> List[Shard]:
    """Split pending fault indices into shards.

    The default size targets ~4 shards per worker (load balance against
    stragglers) capped at :data:`MAX_SHARD_SIZE` (journal granularity).
    ``first_id`` offsets the shard ids so successive batches of one
    streamed campaign stay uniquely identified.
    """
    if not indices:
        return []
    if shard_size is None:
        per_worker = -(-len(indices) // (max(1, workers) * 4))
        shard_size = max(1, min(MAX_SHARD_SIZE, per_worker))
    shard_size = max(1, shard_size)
    return [Shard(shard_id=first_id + n, indices=tuple(chunk))
            for n, chunk in enumerate(
                indices[start:start + shard_size]
                for start in range(0, len(indices), shard_size))]


def _mp_context():
    """Prefer fork (workers skip re-importing the package); fall back to
    the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _worker_main(worker_id: int, jobspec: CampaignJobSpec, conn,
                 trace: bool = False,
                 chaos_spec: Optional[str] = None) -> None:
    """Worker process body: build one campaign, then drain shards."""
    parent = os.getppid()
    # The parent owns interrupt handling: on Ctrl-C it drains in-flight
    # shards and journals an interrupted stop line, which only works if
    # the terminal's process-group SIGINT doesn't kill the workers first.
    # SIGTERM is the opposite case: under fork the child inherits the
    # parent's graceful-shutdown handler, which would absorb the
    # watchdog's terminate() as a polite stop request a hung worker
    # never gets to honour — reset it so terminate() stays lethal.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except ValueError:  # pragma: no cover - non-main thread
        pass
    # Under fork the child inherits the parent's tracer events, registry
    # values and chaos fire-counts; reset all three so nothing is
    # double-reported, and give this process its own span-stream id
    # (tid 0 is the parent's).
    TRACER.reset(enabled=trace, tid=worker_id + 1)
    REGISTRY.reset()
    chaos.install(chaos.ChaosPlan.from_spec(chaos_spec)
                  if chaos_spec else None)
    try:
        runner = JobRunner(jobspec)
    except BaseException:
        conn.send(("fatal", worker_id, traceback.format_exc()))
        return
    conn.send(("ready", worker_id))
    last_beat = time.monotonic()

    def beat() -> None:
        # Rate-limited heartbeat, sent from the main thread between
        # experiments (same synchronous-send discipline as results).
        nonlocal last_beat
        now = time.monotonic()
        if now - last_beat >= _BEAT_SECONDS:
            last_beat = now
            try:
                conn.send(("beat", worker_id))
            except (OSError, ValueError):
                pass

    while True:
        while not conn.poll(_ORPHAN_POLL_SECONDS):
            # Reparented (original parent died without cleanup): exit
            # rather than wait forever on a pipe no one will feed.
            if os.getppid() != parent:
                return
        try:
            assignment = conn.recv()
        except (EOFError, OSError):
            return
        if assignment is None:
            return
        shard, attempt = assignment
        for index in shard.indices:
            if chaos.fire("worker_crash", key=index, attempt=attempt):
                os._exit(CHAOS_CRASH_EXIT)
        for index in shard.indices:
            if chaos.fire("worker_hang", key=index, attempt=attempt):
                while True:  # stop making progress until the watchdog
                    time.sleep(_ORPHAN_POLL_SECONDS)
                    if os.getppid() != parent:
                        return  # don't outlive an uncleanly-dead parent
        last_beat = time.monotonic()
        try:
            records = runner.run_indices(shard.indices, progress=beat)
        except BaseException:
            # Observability state of the failed shard is discarded: the
            # shard will re-run in full, so shipping partial spans or
            # counts would double-report after the retry.
            TRACER.reset(enabled=trace, tid=worker_id + 1)
            REGISTRY.reset()
            conn.send(("error", worker_id, shard.shard_id,
                       traceback.format_exc()))
        else:
            chaos.sleep("slow_result", key=shard.shard_id,
                        attempt=attempt)
            spans = TRACER.drain() if trace else []
            metrics_state = REGISTRY.to_state()
            REGISTRY.reset()
            conn.send(("result", worker_id, shard.shard_id,
                       records, spans, metrics_state))


class _Worker:
    """Parent-side handle: process + its private message pipe."""

    def __init__(self, ctx, worker_id: int, jobspec: CampaignJobSpec,
                 trace: bool = False,
                 chaos_spec: Optional[str] = None):
        self.worker_id = worker_id
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.shard: Optional[Shard] = None
        self.ready = False
        self.hung = False
        self.assigned_at = 0.0
        self.last_activity = time.monotonic()
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, jobspec, child_conn, trace, chaos_spec),
            daemon=True)
        self.process.start()
        # The parent must not hold the child's end open, or it would
        # never see EOF after the child exits.
        child_conn.close()

    def assign(self, shard: Shard, attempt: int) -> None:
        self.shard = shard
        self.assigned_at = self.last_activity = time.monotonic()
        self._send((shard, attempt))

    def release(self) -> Optional[Shard]:
        shard, self.shard = self.shard, None
        return shard

    def stop(self) -> None:
        if self.process.is_alive():
            self._send(None)

    def _send(self, obj) -> None:
        try:
            self.conn.send(obj)
        except (OSError, ValueError):
            # Worker died; liveness checking requeues its shard.
            pass

    def reap(self, timeout: float = 2.0) -> None:
        """Join, escalating terminate -> kill: never leak a zombie."""
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)
        if self.process.is_alive():
            # Ignored SIGTERM (masked signals, a wedged C extension):
            # SIGKILL cannot be ignored.
            self.process.kill()
            self.process.join(timeout)
        self.conn.close()


class WorkerPool:
    """Runs shards of one job spec across worker processes."""

    def __init__(self, jobspec: CampaignJobSpec, workers: int,
                 max_retries: int = 2,
                 on_retry: Optional[Callable[[Shard], None]] = None,
                 trace: bool = False,
                 shard_timeout: Optional[float] = None,
                 backoff_base: float = 0.25,
                 on_quarantine: Optional[QuarantineCallback] = None):
        if workers < 1:
            raise SchedulerError("worker pool needs at least one worker")
        self.jobspec = jobspec
        self.workers = workers
        self.max_retries = max_retries
        self.on_retry = on_retry
        self.trace = trace
        self.shard_timeout = shard_timeout
        self.backoff_base = backoff_base
        self.on_quarantine = on_quarantine
        self.retries = 0
        self.hangs = 0
        #: Live worker-process count, updated as the pool breathes
        #: (spawn / death / teardown); read by the /status provider.
        self.alive = 0
        #: EWMA of observed per-experiment wall time (None until the
        #: first shard completes); feeds the watchdog deadline.
        self.ewma_experiment_s: Optional[float] = None

    def deadline_for(self, shard: Shard) -> float:
        """Watchdog deadline for one shard, in seconds of silence."""
        if self.shard_timeout is not None:
            return self.shard_timeout
        if self.ewma_experiment_s is None:
            return _WATCHDOG_FLOOR_S
        return max(_WATCHDOG_FLOOR_S,
                   _WATCHDOG_FACTOR * self.ewma_experiment_s
                   * len(shard.indices))

    def run(self, shards: Sequence[Shard],
            on_records: Callable[[Shard, List[Dict]], None],
            on_spans: Optional[SpanCallback] = None) -> None:
        """Execute every shard, streaming record batches to
        ``on_records`` as workers finish them (arrival order).

        Worker observability ships with each result: span batches go to
        ``on_spans`` (when tracing), metrics snapshots merge into this
        process's registry.
        """
        self.run_batches(iter([list(shards)]), on_records, on_spans)

    def run_batches(self, batches: Iterable[Sequence[Shard]],
                    on_records: Callable[[Shard, List[Dict]], None],
                    on_spans: Optional[SpanCallback] = None,
                    should_stop: Optional[Callable[[], bool]] = None
                    ) -> None:
        """Execute a stream of shard batches over one persistent pool.

        Each batch is fully drained before the next one is pulled from
        ``batches`` — that pull is the campaign's batch barrier, where a
        stopping controller can extend the stream or cut it short by
        exhausting the iterator.  Workers persist across batches (each
        one rebuilt its campaign exactly once) and idle at the barrier.
        Shard ids must be unique across the whole stream (see
        :func:`plan_shards`'s ``first_id``).

        ``should_stop`` is polled every scheduling round: once true,
        queued shards are abandoned, in-flight shards drain normally
        (their results still stream to ``on_records``), and the pool
        raises :class:`~repro.errors.CampaignInterrupted`.
        """
        ctx = _mp_context()
        chaos_spec = chaos.active_spec()
        backlog: deque = deque()
        delayed: List[Tuple[float, Shard]] = []
        by_id: Dict[int, Shard] = {}
        attempts: Dict[int, int] = {}
        outstanding: set = set()
        pool: Dict[int, _Worker] = {}
        next_worker_id = 0
        next_bisect_id = _BISECT_ID_BASE
        stopping = False

        def spawn() -> None:
            nonlocal next_worker_id
            worker = _Worker(ctx, next_worker_id, self.jobspec,
                             trace=self.trace, chaos_spec=chaos_spec)
            pool[next_worker_id] = worker
            next_worker_id += 1
            self.alive = len(pool)
            _WORKERS_ALIVE.set(len(pool))

        def feed(worker: _Worker) -> None:
            if stopping:
                return
            if backlog and worker.ready and worker.shard is None:
                shard = backlog.popleft()
                worker.assign(shard, attempts.get(shard.shard_id, 0))

        def check_stop() -> None:
            # Abandon queued work; in-flight shards drain normally so
            # no finished experiment is lost.
            nonlocal stopping
            if stopping or should_stop is None or not should_stop():
                return
            stopping = True
            for shard in backlog:
                outstanding.discard(shard.shard_id)
            backlog.clear()
            for _, shard in delayed:
                outstanding.discard(shard.shard_id)
            delayed.clear()

        def promote_delayed() -> None:
            if not delayed:
                return
            now = time.monotonic()
            due = [entry for entry in delayed if entry[0] <= now]
            if due:
                delayed[:] = [entry for entry in delayed
                              if entry[0] > now]
                for _, shard in due:
                    backlog.append(shard)

        def quarantine(shard: Shard, reason: str) -> None:
            # Retry budget exhausted.  With no quarantine callback this
            # is still fatal (historical behaviour); with one, bisect
            # until the poison fault is isolated, then excise it.
            nonlocal next_bisect_id
            if self.on_quarantine is None:
                raise SchedulerError(
                    f"shard {shard.shard_id} failed "
                    f"{attempts[shard.shard_id]} times; last cause:\n"
                    f"{reason}")
            outstanding.discard(shard.shard_id)
            if len(shard.indices) > 1:
                mid = len(shard.indices) // 2
                _BISECTIONS.inc()
                TRACER.instant("shard_bisect", shard=shard.shard_id,
                               size=len(shard.indices))
                log.warning(
                    "shard %d exhausted %d retries; bisecting %d "
                    "indices to isolate the poison fault",
                    shard.shard_id, attempts[shard.shard_id],
                    len(shard.indices))
                for half in (shard.indices[mid:], shard.indices[:mid]):
                    child = Shard(shard_id=next_bisect_id, indices=half)
                    next_bisect_id += 1
                    by_id[child.shard_id] = child
                    outstanding.add(child.shard_id)
                    backlog.appendleft(child)
            else:
                index = shard.indices[0]
                TRACER.instant("quarantine", index=index)
                log.warning("quarantining poison fault %d: %s",
                            index, reason.strip().splitlines()[-1]
                            if reason.strip() else reason)
                self.on_quarantine(index, reason)

        def requeue(shard: Shard, reason: str, kind: str) -> None:
            if stopping:
                # Interrupted: the shard is abandoned (resume re-runs
                # it) instead of respawning workers on the way out.
                outstanding.discard(shard.shard_id)
                return
            attempts[shard.shard_id] = attempts.get(shard.shard_id, 0) + 1
            if attempts[shard.shard_id] > self.max_retries:
                quarantine(shard, reason)
                return
            self.retries += 1
            _SHARD_RETRIES.inc(reason=kind)
            TRACER.instant("shard_retry", shard=shard.shard_id,
                           reason=kind,
                           attempt=attempts[shard.shard_id])
            if self.on_retry is not None:
                self.on_retry(shard)
            delay = min(_BACKOFF_CAP_S,
                        self.backoff_base
                        * (2 ** (attempts[shard.shard_id] - 1)))
            if delay > 0:
                delayed.append((time.monotonic() + delay, shard))
            else:
                backlog.appendleft(shard)

        def dispatch(message, worker: _Worker,
                     alive: bool = True) -> None:
            # Apply one worker message to the pool state.  alive=False
            # is the post-mortem drain of a dead worker's pipe: results
            # still count, but the worker gets no further work.
            worker.last_activity = time.monotonic()
            kind = message[0]
            if kind == "beat":
                return
            if kind == "ready":
                worker.ready = True
                if alive:
                    feed(worker)
            elif kind == "result":
                shard_id, records = message[2], message[3]
                spans, metrics_state = message[4], message[5]
                shard = worker.release()
                if shard is not None and shard.shard_id == shard_id:
                    elapsed = time.monotonic() - worker.assigned_at
                    sample = elapsed / max(1, len(shard.indices))
                    self.ewma_experiment_s = sample \
                        if self.ewma_experiment_s is None \
                        else (_EWMA_ALPHA * sample
                              + (1.0 - _EWMA_ALPHA)
                              * self.ewma_experiment_s)
                if shard_id in outstanding:
                    outstanding.discard(shard_id)
                    if spans and on_spans is not None:
                        on_spans(worker.worker_id, spans)
                    if metrics_state is not None:
                        REGISTRY.merge_state(metrics_state)
                    on_records(by_id[shard_id], records)
                if alive:
                    # An idle worker stays alive: the batch stream may
                    # carry more work after the barrier.  Teardown
                    # happens once the stream is exhausted
                    # (run_batches' finally).
                    feed(worker)
            elif kind == "error":
                shard_id, reason = message[2], message[3]
                worker.release()
                if shard_id in outstanding:
                    requeue(by_id[shard_id], reason, kind="error")
                if alive:
                    feed(worker)
            elif kind == "fatal":
                raise SchedulerError(
                    f"worker {worker.worker_id} failed to start:\n"
                    f"{message[2]}")

        def drain() -> None:
            # Handle every pending worker message (blocking briefly).
            conns = {worker.conn: worker for worker in pool.values()}
            if not conns:
                time.sleep(_POLL_SECONDS)
                return
            for conn in mp_connection.wait(list(conns),
                                           timeout=_POLL_SECONDS):
                for message in self._pending_messages(conn):
                    dispatch(message, conns[conn])

        def patrol_watchdog() -> None:
            # Kill workers whose shard has gone silent past its
            # deadline; the dead-worker scan below requeues the shard.
            now = time.monotonic()
            for worker in pool.values():
                if worker.shard is None or worker.hung \
                        or not worker.process.is_alive():
                    continue
                deadline = self.deadline_for(worker.shard)
                if now - worker.last_activity <= deadline:
                    continue
                worker.hung = True
                self.hangs += 1
                _HANGS.inc()
                TRACER.instant("watchdog_kill",
                               worker=worker.worker_id,
                               shard=worker.shard.shard_id,
                               deadline_s=round(deadline, 3))
                log.warning(
                    "worker %d silent for %.1fs on shard %d "
                    "(deadline %.1fs); killing it",
                    worker.worker_id, now - worker.last_activity,
                    worker.shard.shard_id, deadline)
                worker.process.terminate()
                worker.process.join(0.2)
                if worker.process.is_alive():
                    # SIGTERM masked or wedged in C code: SIGKILL
                    # cannot be ignored.
                    worker.process.kill()
                    worker.process.join(0.2)

        def check_liveness() -> None:
            # Requeue shards of dead workers; keep the pool staffed.
            patrol_watchdog()
            for worker_id in [wid for wid, worker in pool.items()
                              if not worker.process.is_alive()]:
                worker = pool.pop(worker_id)
                self.alive = len(pool)
                _WORKERS_ALIVE.set(len(pool))
                # Dispatch any complete messages the worker shipped
                # before dying, so its finished shards are not re-run.
                # Sends are synchronous in the worker, so a crash in
                # experiment code cannot leave a torn message behind.
                for message in self._pending_messages(worker.conn):
                    dispatch(message, worker, alive=False)
                shard = worker.release()
                if shard is not None and shard.shard_id in outstanding:
                    if worker.hung:
                        requeue(shard,
                                f"worker {worker_id} hung (no "
                                "heartbeat within the watchdog "
                                "deadline)", kind="hang")
                    else:
                        requeue(shard,
                                f"worker {worker_id} died (exit code "
                                f"{worker.process.exitcode})",
                                kind="crash")
                worker.reap(timeout=0.5)
            pending = len(backlog) + len(delayed) \
                + sum(1 for worker in pool.values()
                      if worker.shard is not None)
            if not stopping:
                while pending and len(pool) < min(self.workers,
                                                  len(outstanding)):
                    spawn()
                    pending += 1
            # A requeue may have refilled the backlog after a worker
            # went idle; hand those shards out again.
            for worker in pool.values():
                if worker.ready and worker.shard is None and backlog:
                    feed(worker)

        try:
            for shards in batches:
                check_stop()
                if stopping:
                    break
                if not shards:
                    continue
                for shard in shards:
                    if shard.shard_id in by_id:
                        raise SchedulerError(
                            f"duplicate shard id {shard.shard_id} "
                            "across batches")
                    by_id[shard.shard_id] = shard
                    backlog.append(shard)
                    outstanding.add(shard.shard_id)
                while len(pool) < min(self.workers, len(outstanding)):
                    spawn()
                for worker in pool.values():
                    feed(worker)
                while outstanding:
                    check_stop()
                    promote_delayed()
                    drain()
                    check_liveness()
            if stopping:
                raise CampaignInterrupted(
                    "campaign interrupted; in-flight shards drained")
        finally:
            for worker in pool.values():
                worker.stop()
            for worker in pool.values():
                worker.reap()
            self.alive = 0
            _WORKERS_ALIVE.set(0)

    def _pending_messages(self, conn):
        """Yield complete messages waiting on a worker pipe."""
        while True:
            try:
                if not conn.poll(0):
                    return
                yield conn.recv()
            except (EOFError, OSError):
                return  # dead worker: liveness requeues its shard
