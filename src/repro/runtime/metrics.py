"""Campaign execution metrics: throughput, phases, progress callbacks.

The paper's whole argument is a time argument (table 2's emulation-time
speedups), so the runtime keeps two clocks side by side:

* **host wall-clock** — what this reproduction actually spends, split
  per phase (``setup`` / ``golden`` / ``experiments`` / ``aggregate``);
* **emulated time** — the 2006-era board seconds accumulated from each
  experiment's :class:`~repro.core.timing_model.ExperimentCost`.

A :class:`CampaignMetrics` instance is fed one record at a time by the
engine and periodically fires a progress callback with an immutable
:class:`MetricsSnapshot` — the CLI renders those as progress lines, tests
use them to observe (and interrupt) a running campaign.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional

from ..obs import metrics as obs_metrics
from ..obs.tracing import span

ProgressCallback = Callable[["MetricsSnapshot"], None]

_PHASE_SECONDS = obs_metrics.histogram(
    "campaign_phase_seconds",
    "Host wall-clock spent per engine phase.",
    buckets=(0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0))
_RECORDS = obs_metrics.counter(
    "campaign_records_total", "Journal records accounted, by outcome.")
_RETRIES = obs_metrics.counter(
    "campaign_retries_total", "Shard retries after worker failures.")


@dataclass(frozen=True)
class MetricsSnapshot:
    """Point-in-time view of a running (or finished) campaign."""

    total: int = 0
    #: Whether ``total`` is exact.  Adaptive campaigns only know an
    #: upper bound until their stopping rule fires, so percentages and
    #: ETAs projected against it would be misleading.
    total_exact: bool = True
    completed: int = 0
    skipped: int = 0
    retries: int = 0
    quarantined: int = 0
    wall_s: float = 0.0
    emulated_s: float = 0.0
    phases: Dict[str, float] = field(default_factory=dict)
    #: Per-outcome counts for *this* campaign (the registry's
    #: ``campaign_records_total`` counter spans the whole process).
    outcomes: Dict[str, int] = field(default_factory=dict)

    @property
    def pending(self) -> int:
        return max(0, self.total - self.skipped - self.completed)

    @property
    def throughput(self) -> float:
        """Completed experiments per host second."""
        if self.wall_s <= 0.0:
            return 0.0
        return self.completed / self.wall_s

    @property
    def eta_s(self) -> Optional[float]:
        """Projected host seconds until the campaign drains.

        ``None`` when nothing has completed yet (zero throughput gives
        no basis for a projection) or while the total is only an upper
        bound (early stopping may fire at any checkpoint — projecting
        to the budget would overstate the remaining work); ``0.0`` once
        nothing is pending.
        """
        if self.pending <= 0:
            return 0.0
        if not self.total_exact:
            return None
        rate = self.throughput
        if rate <= 0.0:
            return None
        return self.pending / rate

    def render(self) -> str:
        done = self.skipped + self.completed
        bound = self.total if self.total_exact else f"<={self.total}"
        line = (f"[{done}/{bound}] "
                f"{self.throughput:.1f} exp/s | "
                f"emulated {self.emulated_s:.1f} s")
        if self.skipped:
            line += f" | resumed past {self.skipped}"
        if self.retries:
            line += f" | retries {self.retries}"
        if self.quarantined:
            line += f" | quarantined {self.quarantined}"
        if self.pending:
            eta = self.eta_s
            line += (" | eta --:--" if eta is None
                     else f" | eta {eta:.1f} s")
        return line


class CampaignMetrics:
    """Accumulates counters and fires progress callbacks.

    ``progress_interval`` throttles the callback to every N-th record
    (the final record always fires).  The clock is injectable so tests
    can run against a fake time source.
    """

    def __init__(self, progress: Optional[ProgressCallback] = None,
                 progress_interval: int = 1,
                 clock: Callable[[], float] = time.monotonic,
                 backend: str = "reference"):
        self._progress = progress
        self._interval = max(1, progress_interval)
        self._clock = clock
        self._backend = backend
        self._started = clock()
        self._phase_wall: Dict[str, float] = {}
        self.total = 0
        self.total_exact = True
        self.completed = 0
        self.skipped = 0
        self.retries = 0
        self.quarantined = 0
        self.emulated_s = 0.0
        self.outcomes: Dict[str, int] = {}
        # Snapshots may be taken from the exporter's server thread
        # while the engine thread is mid-record.
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------
    def set_total(self, total: int, skipped: int = 0,
                  exact: bool = True) -> None:
        """Declare the campaign size; ``exact=False`` marks it a budget
        cap the stopping rule may undercut."""
        self.total = total
        self.total_exact = exact
        self.skipped = skipped

    def resolve_total(self, total: int) -> None:
        """Pin the final campaign size once the stopping rule fires."""
        self.total = total
        self.total_exact = True

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate wall-clock under a named phase (re-enterable).

        Each phase is also an observability event: a trace span (so
        engine phases appear in ``--trace`` output and partition the
        campaign wall-clock) and a ``campaign_phase_seconds`` sample.
        """
        begin = self._clock()
        with span(name, scope="engine"):
            try:
                yield
            finally:
                elapsed = self._clock() - begin
                self._phase_wall[name] = self._phase_wall.get(name, 0.0) \
                    + elapsed
                _PHASE_SECONDS.observe(elapsed, phase=name,
                                       sim_backend=self._backend)

    def record(self, record: Dict) -> None:
        """Account one finished experiment (journal-record form)."""
        outcome = str(record.get("outcome", "?"))
        _RECORDS.inc(outcome=outcome)
        cost = record.get("cost") or {}
        emulated = (cost.get("locate_s", 0.0)
                    + cost.get("transfer_s", 0.0)
                    + cost.get("workload_s", 0.0)
                    + cost.get("overhead_s", 0.0))
        with self._lock:
            self.completed += 1
            self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
            if record.get("quarantined"):
                self.quarantined += 1
            self.emulated_s += emulated
        if self._progress is None:
            return
        remaining = self.total - self.skipped - self.completed
        if self.completed % self._interval == 0 or remaining <= 0:
            self._progress(self.snapshot())

    def add_retry(self, count: int = 1) -> None:
        self.retries += count
        _RETRIES.inc(count)

    # -- reporting -----------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            return MetricsSnapshot(
                total=self.total,
                total_exact=self.total_exact,
                completed=self.completed,
                skipped=self.skipped,
                retries=self.retries,
                quarantined=self.quarantined,
                wall_s=self._clock() - self._started,
                emulated_s=self.emulated_s,
                phases=dict(self._phase_wall),
                outcomes=dict(self.outcomes),
            )

    def finish(self) -> MetricsSnapshot:
        """Final snapshot; fires the progress callback one last time."""
        snap = self.snapshot()
        if self._progress is not None:
            self._progress(snap)
        return snap
