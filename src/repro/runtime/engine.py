"""Campaign execution engine: the public entry points of the runtime.

:func:`run_campaign` takes a :class:`~repro.runtime.jobspec.CampaignJobSpec`
and returns the very same :class:`~repro.core.campaign.CampaignResult`
the serial ``FadesCampaign.run`` path produces, whatever the execution
strategy:

* ``workers=0`` — in-process, one experiment after another (still gains
  journaling and metrics);
* ``workers>=1`` — a multiprocessing pool; each worker rebuilds the
  campaign from the job spec, so no simulator state crosses process
  boundaries.

With ``journal=<path>`` every experiment record is streamed to an
append-only JSONL file; re-running the same campaign (or calling
:func:`resume_campaign` on the journal alone) skips every fault index
that already has a record.  The determinism contract (see
:mod:`repro.runtime.jobspec`) makes the two interchangeable: a resumed,
sharded campaign tallies exactly like an uninterrupted serial one.
"""

from __future__ import annotations

import hashlib
import json
import signal
import threading
import traceback
from typing import Dict, List, Optional, Union

from ..core import generate_faultload, pool_size
from ..core.campaign import CampaignResult
from ..core.classify import Outcome
from ..errors import (CampaignInterrupted, JournalError,
                      ObservabilityError)
from ..core.faults import Fault
from ..faultload import (FaultStream, SequentialController, StopDecision,
                         summarize_strata, tally_prefix)
from ..obs import metrics as obs_metrics
from ..obs.alerts import AlertRule
from ..obs.logsetup import get_logger
from ..obs.profile import PhaseProfiler, maybe_profile
from ..obs.timeseries import DEFAULT_INTERVAL_S
from ..obs.tracing import PARENT_TID, TRACER, TraceWriter, span
from .jobspec import (CampaignJobSpec, JobRunner, build_campaign,
                      result_from_record)
from .journal import JournalWriter, check_compatible, read_journal
from .liveobs import CampaignObservability
from .metrics import CampaignMetrics, ProgressCallback
from .scheduler import WorkerPool, plan_shards

log = get_logger("repro.runtime.engine")

_SAVED = obs_metrics.counter(
    "experiments_saved_total",
    "Experiments the statistical planner never emulated, by reason.")
_QUARANTINED = obs_metrics.counter(
    "faults_quarantined_total",
    "Poison faults excised from campaigns after bisection.")


def run_campaign(jobspec: CampaignJobSpec, workers: int = 0,
                 journal: Optional[str] = None,
                 progress: Optional[ProgressCallback] = None,
                 progress_interval: int = 1,
                 shard_size: Optional[int] = None,
                 max_retries: int = 2,
                 trace: Union[None, bool, str] = None,
                 profile: Optional[str] = None,
                 shard_timeout: Optional[float] = None,
                 serve_obs: Optional[str] = None,
                 alert_rules: Optional[List[AlertRule]] = None,
                 sample_interval: float = DEFAULT_INTERVAL_S
                 ) -> CampaignResult:
    """Execute one experiment class; see the module docstring.

    ``trace`` opts into span tracing: a path writes a fresh
    Chrome/Perfetto trace file there; ``True`` appends to the journal's
    ``.trace`` sidecar (requires ``journal``), which is how worker span
    streams survive crashes and extend across resumes.  ``profile`` is
    a path prefix for per-phase cProfile ``.pstats`` artifacts.
    ``shard_timeout`` pins the watchdog deadline for parallel shards
    (seconds of worker silence); by default the scheduler derives one
    from observed experiment times.

    ``serve_obs`` (``[HOST:]PORT``) starts the live HTTP exporter for
    the campaign's lifetime; ``alert_rules`` replaces the built-in
    alert rule set; ``sample_interval`` throttles the time-series
    sampler (samples persist to ``<journal>.tsdb`` when journaling).
    """
    trace_writer: Optional[TraceWriter] = None
    if trace:
        if trace is True:
            if journal is None:
                raise ObservabilityError(
                    "sidecar tracing (trace=True) needs a journal path")
            path, append = journal + ".trace", True
        else:
            path, append = str(trace), False
        TRACER.reset(enabled=True, tid=PARENT_TID)
        trace_writer = TraceWriter(path, append=append)
    profiler = PhaseProfiler(profile) if profile else None
    try:
        with span("campaign", label=jobspec.display_label(),
                  workers=workers):
            return _execute(jobspec, workers, journal, progress,
                            progress_interval, shard_size, max_retries,
                            trace_writer, profiler, shard_timeout,
                            serve_obs=serve_obs,
                            alert_rules=alert_rules,
                            sample_interval=sample_interval)
    finally:
        if trace_writer is not None:
            # Parent spans (campaign root + engine phases) land last;
            # worker spans were streamed shard by shard as they arrived.
            trace_writer.write(TRACER.drain())
            trace_writer.close()
            TRACER.disable()


def _execute(jobspec: CampaignJobSpec, workers: int,
             journal: Optional[str],
             progress: Optional[ProgressCallback],
             progress_interval: int, shard_size: Optional[int],
             max_retries: int, trace_writer: Optional[TraceWriter],
             profiler: Optional[PhaseProfiler],
             shard_timeout: Optional[float] = None,
             serve_obs: Optional[str] = None,
             alert_rules: Optional[List[AlertRule]] = None,
             sample_interval: float = DEFAULT_INTERVAL_S
             ) -> CampaignResult:
    metrics = CampaignMetrics(progress=progress,
                              progress_interval=progress_interval,
                              backend=jobspec.backend)
    budget = jobspec.effective_budget()
    cycles = jobspec.spec.workload_cycles
    with metrics.phase("setup"), maybe_profile(profiler, "setup"):
        campaign = build_campaign(jobspec)
        stream: Optional[FaultStream] = None
        if jobspec.adaptive:
            # Faults materialise window by window (stream.ensure); the
            # list below grows in place as the campaign extends.
            stream = FaultStream(
                jobspec.spec, campaign.locmap,
                seed=jobspec.effective_faultload_seed(),
                routed_nets=campaign.impl.routing.is_routed,
                strategy=jobspec.strategy)
            faults: List[Fault] = stream.faults
        else:
            faults = generate_faultload(
                jobspec.spec, campaign.locmap,
                seed=jobspec.effective_faultload_seed(),
                routed_nets=campaign.impl.routing.is_routed)
        pool = pool_size(jobspec.spec, campaign.locmap)

        records: Dict[int, Dict] = {}
        writer: Optional[JournalWriter] = None
        replayed_alerts: List[Dict] = []
        if journal is not None:
            state = read_journal(journal)
            check_compatible(state, jobspec, journal)
            records.update(state.done_indices(budget))
            replayed_alerts = state.alerts
            writer = JournalWriter(journal, jobspec, state=state)

    # The dispatch schedule: windows between stopping-rule checkpoints.
    # A fixed-budget campaign is the degenerate single-window schedule,
    # which reduces this function to its historical one-shot behaviour.
    controller: Optional[SequentialController] = None
    if jobspec.epsilon is not None:
        with metrics.phase("plan"), maybe_profile(profiler, "plan"):
            controller = SequentialController(
                jobspec.epsilon, budget, confidence=jobspec.confidence)
    checkpoints = controller.checkpoints() if controller is not None \
        else [budget]

    metrics.set_total(budget, skipped=len(records),
                      exact=controller is None)

    with metrics.phase("golden"), maybe_profile(profiler, "golden"):
        golden = _golden_with_cache(jobspec, campaign, cycles)

    # Bound below, before any experiment runs; None only so the take /
    # check_stop closures resolve while the coordinator is being built.
    live: Optional[CampaignObservability] = None

    def take(batch: List[Dict]) -> None:
        if live is not None:
            # Pre-batch poll: runtime-health counters (watchdog kills,
            # retries) move between batches on the parent's event loop,
            # so alerts about them fire before this batch's progress
            # callbacks observe the registry.
            live.poll()
        for record in batch:
            records[record["index"]] = record
            if writer is not None:
                writer.append_record(record)
            metrics.record(record)
        if live is not None:
            live.poll()

    def quarantine(index: int, reason: str) -> None:
        """Journal a poison fault the runtime excised (see scheduler)."""
        _QUARANTINED.inc()
        take([_quarantined_record(index, reason)])

    # Static fault analysis: journal provably-Silent faults directly and
    # defer equivalence-class members to their representative's record.
    # The plan is a pure function of the job spec (the faultload is
    # seed-derived), so resumed campaigns recompute the identical plan
    # and skip whatever of it is already journaled.  Unlike the serial
    # path, every engine experiment re-seeds the injector per fault
    # index, so no RNG-stream restriction is needed.  Under early
    # stopping the plan is recomputed per window, with the window's
    # local indices translated onto the campaign's.
    collapsed: Dict[int, int] = {}

    def prepare_window(start: int, end: int) -> List[int]:
        """Materialise, prune and plan one window; pending indices."""
        if stream is not None and len(stream) < end:
            with metrics.phase("plan"), maybe_profile(profiler, "plan"):
                stream.ensure(end)
        if jobspec.prune_silent:
            with metrics.phase("prune"), maybe_profile(profiler,
                                                       "prune"):
                plan = campaign.static_plan(faults[start:end], cycles)
                for member, representative in plan.collapsed.items():
                    collapsed[start + member] = start + representative
                take([_pruned_record(start + index)
                      for index in sorted(plan.pruned)
                      if start + index not in records])
        return [index for index in range(start, end)
                if index not in records and index not in collapsed]

    def attribute(start: int, end: int) -> None:
        """Collapsed-fault attribution: every representative of the
        drained window has a record by now (journaled earlier or
        emulated above)."""
        take([_collapsed_record(member, representative,
                                records[representative])
              for member, representative in sorted(collapsed.items())
              if start <= member < end and member not in records])

    stop_decision: Optional[StopDecision] = None

    def check_stop(n: int) -> bool:
        """Evaluate the stopping rule over the complete prefix 0..n-1.

        Called only at batch barriers, so the tally — and therefore the
        stopping point — is identical for serial, sharded and resumed
        executions of the same job spec.
        """
        nonlocal stop_decision
        if live is not None:
            # The barrier is the live layer's clock: force a sample so
            # every checkpoint lands in the series and the alert rules
            # run even when the throttle would have skipped it.
            live.poll(force=True)
        if controller is None or stop_decision is not None:
            return stop_decision is not None
        counts = tally_prefix(records, n)
        if counts is None:
            raise JournalError(
                f"stopping rule consulted on an incomplete prefix "
                f"(n={n})")
        decision = controller.check(counts, n)
        if decision.stop:
            stop_decision = decision
        return decision.stop

    # Graceful shutdown: the first SIGINT/SIGTERM asks the executor to
    # drain in-flight work and journal an interrupted stop line; a
    # second one forces the default behaviour.  Handlers can only live
    # on the main thread; elsewhere the campaign simply isn't
    # interruptible this way.
    interrupt = threading.Event()
    previous_handlers: Dict[int, object] = {}

    def _on_signal(signum, _frame) -> None:
        if interrupt.is_set():
            raise KeyboardInterrupt
        interrupt.set()
        log.warning(
            "received %s: draining in-flight shards, then stopping "
            "(repeat to force)", signal.Signals(signum).name)

    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(signum, _on_signal)

    executed = 0  # end of the last window handed to the executor
    try:
        live = CampaignObservability(
            label=jobspec.display_label(), metrics=metrics,
            journal=journal, writer=writer, serve_obs=serve_obs,
            alert_rules=alert_rules, replayed_alerts=replayed_alerts,
            sample_interval=sample_interval, workers=max(0, workers))
        if workers <= 0:
            runner = JobRunner(jobspec, campaign=campaign,
                               faults=faults, pool=pool)
            # Chunk at the backend's batch size so the compiled
            # backend fills whole lane batches (reference: size 1).
            size = max(1, runner.batch_size())
            start = 0
            for end in checkpoints:
                pending = prepare_window(start, end)
                with metrics.phase("experiments"), \
                        maybe_profile(profiler, "experiments"):
                    for offset in range(0, len(pending), size):
                        if interrupt.is_set():
                            raise CampaignInterrupted(
                                "campaign interrupted between "
                                "experiments")
                        _run_chunk(runner, pending[offset:offset + size],
                                   max_retries, take, quarantine)
                    attribute(start, end)
                executed = end
                if check_stop(end):
                    break
                start = end
        else:
            worker_pool = WorkerPool(
                jobspec, workers=workers, max_retries=max_retries,
                on_retry=lambda _shard: metrics.add_retry(),
                trace=trace_writer is not None,
                shard_timeout=shard_timeout,
                on_quarantine=quarantine)
            live.attach_pool(worker_pool)
            on_spans = (None if trace_writer is None else
                        lambda _worker_id, spans:
                        trace_writer.write(spans))
            bounds = [0] + checkpoints
            # Window 0 is prepared eagerly, outside the experiments
            # phase, so the fixed-budget path keeps its historical
            # setup/golden/prune/experiments phase sequence; later
            # windows are prepared at the batch barrier inside the
            # experiments phase.
            first_pending = prepare_window(bounds[0], bounds[1])

            def batches():
                """Shard-batch stream; each pull is a batch barrier.

                The worker pool fully drains window *w* before pulling
                window *w+1*, so the attribution and stopping check at
                the top of each iteration always see a complete record
                prefix.
                """
                nonlocal executed
                next_shard_id = 0
                for window in range(len(checkpoints)):
                    start, end = bounds[window], bounds[window + 1]
                    if window > 0:
                        attribute(bounds[window - 1], start)
                        if check_stop(start):
                            return
                        pending = prepare_window(start, end)
                    else:
                        pending = first_pending
                    shards = plan_shards(pending, workers, shard_size,
                                         first_id=next_shard_id)
                    next_shard_id += len(shards)
                    executed = end
                    yield shards

            with metrics.phase("experiments"), \
                    maybe_profile(profiler, "experiments"):
                worker_pool.run_batches(
                    batches(), lambda _shard, batch: take(batch),
                    on_spans=on_spans,
                    should_stop=interrupt.is_set)
                if executed:
                    attribute(bounds[checkpoints.index(executed)],
                              executed)
                check_stop(executed)

        final = stop_decision.n if stop_decision is not None else budget
        if controller is not None:
            metrics.resolve_total(final)
            saved = budget - final
            if saved > 0 and stop_decision is not None:
                _SAVED.inc(saved, reason=stop_decision.reason)

        with metrics.phase("aggregate"), \
                maybe_profile(profiler, "aggregate"):
            result = _assemble(jobspec, golden, faults[:final], records)
            if stop_decision is not None:
                result.stop = stop_decision.to_dict()
            if stream is not None:
                result.strata = summarize_strata(
                    stream.tags[:final],
                    {index: record["outcome"]
                     for index, record in records.items()},
                    confidence=jobspec.confidence)
        if writer is not None:
            if stop_decision is not None:
                writer.append_stop(stop_decision.to_dict())
            writer.append_summary(result.counts(),
                                  result.total_emulation_s,
                                  metrics.snapshot().wall_s)
    except CampaignInterrupted:
        # Every drained in-flight record is already journaled; the stop
        # line marks the interruption so resume (and humans reading the
        # journal) can tell a Ctrl-C from a crash.
        if writer is not None:
            writer.append_interrupt()
        raise
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
        if live is not None:
            # Before the journal closes: the final forced sample may
            # still journal an alert firing.
            live.close()
        if writer is not None:
            writer.close()
    metrics.finish()
    return result


def resume_campaign(journal: str, workers: int = 0,
                    progress: Optional[ProgressCallback] = None,
                    progress_interval: int = 1,
                    max_retries: int = 2,
                    trace: Union[None, bool, str] = None,
                    profile: Optional[str] = None,
                    shard_timeout: Optional[float] = None,
                    serve_obs: Optional[str] = None,
                    alert_rules: Optional[List[AlertRule]] = None,
                    sample_interval: float = DEFAULT_INTERVAL_S
                    ) -> CampaignResult:
    """Finish a journaled campaign from its journal alone.

    Already-journaled fault indices are skipped — including
    ``Quarantined`` records, which replay as-is rather than re-running
    the faults that earned them — and the remaining ones run under the
    job spec recorded in the journal header.
    """
    state = read_journal(journal)
    if state.header is None:
        raise JournalError(
            f"{journal}: not a campaign journal (no header line)")
    return run_campaign(state.jobspec, workers=workers, journal=journal,
                        progress=progress,
                        progress_interval=progress_interval,
                        max_retries=max_retries, trace=trace,
                        profile=profile, shard_timeout=shard_timeout,
                        serve_obs=serve_obs, alert_rules=alert_rules,
                        sample_interval=sample_interval)


def _run_chunk(runner: JobRunner, chunk: List[int], max_retries: int,
               take, quarantine) -> None:
    """In-process mirror of the scheduler's retry-then-quarantine path.

    A chunk that raises falls back to per-index execution with the same
    retry budget workers get, so a poison fault is isolated and excised
    instead of aborting — serial and parallel campaigns survive the
    same faultloads.
    """
    try:
        take(runner.run_indices(chunk))
        return
    except CampaignInterrupted:
        raise
    except Exception:
        log.warning("chunk of %d experiments raised; isolating "
                    "per-index", len(chunk))
    for index in chunk:
        record: Optional[Dict] = None
        reason = ""
        for _attempt in range(max_retries + 1):
            try:
                record = runner.run_index(index)
                break
            except CampaignInterrupted:
                raise
            except Exception:
                reason = traceback.format_exc()
        if record is None:
            quarantine(index, reason)
        else:
            take([record])


def _golden_with_cache(jobspec: CampaignJobSpec, campaign, cycles: int):
    """Golden run, served from the opt-in on-disk cache when possible.

    Keyed by the full job-spec identity plus the run length, so any
    change to the design, workload, seed or backend misses.
    Reference-backend campaigns using golden checkpoints
    (``checkpoint_interval``) always simulate: the disk entry carries
    no device snapshots, and serving it would silently drop the
    fast-forward optimisation.  (Compiled golden runs never store
    checkpoints, so they always qualify.)
    """
    from ..hdl.trace import Trace
    from . import diskcache

    cache = diskcache.cache_dir()
    if cache is None or (campaign.backend == "reference"
                         and campaign.checkpoint_interval):
        return campaign.golden_run(cycles)
    key = hashlib.sha1(json.dumps(
        [jobspec.to_dict(), cycles], sort_keys=True,
        default=str).encode("utf-8")).hexdigest()
    path = cache / "golden" / f"{key}.json"
    blob = diskcache.load_json(path)
    if isinstance(blob, dict):
        try:
            trace = Trace(tuple(blob["output_names"]))
            trace.samples = [tuple(sample) for sample in blob["samples"]]
            trace.final_state = diskcache.tuplify(blob["final_state"])
            trace.cycles = int(blob["cycles"])
        except (KeyError, TypeError) as error:
            log.warning("golden cache entry %s malformed (%s); "
                        "re-simulating", path, error)
        else:
            campaign._golden[campaign._golden_key(cycles)] = trace
            return trace
    trace = campaign.golden_run(cycles)
    diskcache.store_json(path, {
        "output_names": list(trace.output_names),
        "samples": [list(sample) for sample in trace.samples],
        "final_state": trace.final_state,
        "cycles": trace.cycles,
    })
    return trace


def _assemble(jobspec: CampaignJobSpec, golden, faults: List[Fault],
              records: Dict[int, Dict]) -> CampaignResult:
    """Order-independent aggregation into the serial-path result type."""
    missing = [index for index in range(len(faults))
               if index not in records]
    if missing:
        raise JournalError(
            f"campaign incomplete: {len(missing)} experiments without "
            f"records (first missing index {missing[0]})")
    result = CampaignResult(spec_label=jobspec.display_label(),
                            golden=golden)
    for index, fault in enumerate(faults):
        result.experiments.append(
            result_from_record(fault, records[index]))
    # Mean emulated time covers the experiments that actually ran —
    # statically resolved and quarantined records carry zero cost by
    # construction (the board never completed them), matching the
    # serial path's accounting.
    emulated = [experiment for experiment in result.experiments
                if not experiment.pruned
                and not experiment.quarantined
                and experiment.collapsed_from is None]
    result.total_emulation_s = sum(
        experiment.cost.total_s for experiment in emulated)
    if emulated:
        result.mean_emulation_s = (result.total_emulation_s
                                   / len(emulated))
    return result


def _zero_cost() -> Dict:
    return {"locate_s": 0.0, "transfer_s": 0.0, "workload_s": 0.0,
            "overhead_s": 0.0, "transactions": 0}


def _pruned_record(index: int) -> Dict:
    """Journal record for a fault the static analysis proved Silent."""
    return {"index": index, "outcome": Outcome.SILENT.value,
            "first_divergence": None, "cost": _zero_cost(),
            "pruned": True}


def _collapsed_record(index: int, representative: int,
                      rep_record: Dict) -> Dict:
    """Journal record attributing a representative's outcome."""
    record = {"index": index, "outcome": rep_record["outcome"],
              "first_divergence": rep_record.get("first_divergence"),
              "cost": _zero_cost(), "collapsed_from": representative}
    if rep_record.get("quarantined"):
        # A quarantined representative carries no outcome evidence to
        # attribute; its class members inherit the exclusion.
        record["quarantined"] = True
        record["error"] = rep_record.get(
            "error", f"representative {representative} quarantined")
    return record


def _fingerprint(reason: str) -> str:
    """Compact, journal-friendly identity of a failure traceback."""
    lines = [line.strip() for line in reason.strip().splitlines()
             if line.strip()]
    tail = lines[-1] if lines else "unknown failure"
    return tail[:240]


def _quarantined_record(index: int, reason: str) -> Dict:
    """Journal record for a poison fault excised by the runtime."""
    return {"index": index, "outcome": Outcome.QUARANTINED.value,
            "first_divergence": None, "cost": _zero_cost(),
            "quarantined": True, "error": _fingerprint(reason)}
