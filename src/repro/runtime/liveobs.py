"""Live-observability coordinator for one running campaign.

:class:`CampaignObservability` is the engine's single attachment point
for the live layer built in :mod:`repro.obs`: the time-series sampler
(``.tsdb`` sidecar + in-memory ring buffer), the alert engine, and the
opt-in ``--serve-obs`` HTTP exporter.  The engine calls :meth:`poll`
from its batch barriers — never from worker hot paths — which is the
barrier-clock sampling contract ``DESIGN.md`` describes: samples land
on the same schedule for serial, sharded and resumed executions, and a
campaign that opts out of everything pays one no-op method call per
record batch.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence

from ..obs.alerts import AlertEngine, AlertEvent, AlertRule
from ..obs.logsetup import get_logger
from ..obs.server import ObsServer
from ..obs.timeseries import (DEFAULT_INTERVAL_S, TimeseriesSampler,
                              tsdb_path_for)
from .journal import JournalWriter
from .metrics import CampaignMetrics

log = get_logger("repro.runtime.liveobs")

#: How many trailing EWMA values /status ships for the sparkline.
_SERIES_LENGTH = 60


class CampaignObservability:
    """Sampler + alert engine + optional HTTP exporter, as one unit.

    Construction binds the exporter port (bad ``--serve-obs`` specs
    fail before any experiment runs); :meth:`close` force-takes a final
    sample so even sub-interval campaigns leave a non-empty series.
    """

    def __init__(self, label: str, metrics: CampaignMetrics,
                 journal: Optional[str] = None,
                 writer: Optional[JournalWriter] = None,
                 serve_obs: Optional[str] = None,
                 alert_rules: Optional[Sequence[AlertRule]] = None,
                 replayed_alerts: Optional[Sequence[Dict[str, Any]]] = None,
                 sample_interval: float = DEFAULT_INTERVAL_S,
                 workers: int = 0):
        self.label = label
        self._metrics = metrics
        self._writer = writer
        self._workers = workers
        self._pool: Optional[Any] = None  # WorkerPool, set lazily
        self._lock = threading.Lock()
        self._prev: Optional[Dict[str, Any]] = None
        self.sampler = TimeseriesSampler(
            path=tsdb_path_for(journal) if journal else None,
            interval=sample_interval)
        self.alerts = AlertEngine(rules=alert_rules,
                                  on_event=self._journal_event)
        if replayed_alerts:
            self.alerts.replay(replayed_alerts)
        self.server: Optional[ObsServer] = None
        if serve_obs is not None:
            self.server = ObsServer(serve_obs, self.status)
            self.server.start()

    # -- engine hooks --------------------------------------------------
    def attach_pool(self, pool: Any) -> None:
        """Adopt the scheduler's worker pool for liveness reporting."""
        self._pool = pool

    def poll(self, force: bool = False) -> None:
        """Barrier hook: maybe sample, then run the alert rules.

        Serialised because the exporter's ``close``/final sample and
        the engine barrier could otherwise interleave.
        """
        with self._lock:
            sample = self.sampler.sample(self._metrics.snapshot(),
                                         force=force)
            if sample is None:
                return
            self.alerts.evaluate(sample, self._prev)
            self._prev = sample

    def _journal_event(self, event: AlertEvent) -> None:
        if self._writer is not None:
            self._writer.append_alert(event.to_dict())

    # -- /status -------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """The ``/status`` payload (also what ``repro top`` renders)."""
        snap = self._metrics.snapshot()
        samples = self.sampler.samples
        last = samples[-1] if samples else {}
        workers: Dict[str, Any] = {}
        if self._workers:
            workers = {"configured": self._workers,
                       "alive": getattr(self._pool, "alive", 0)}
        return {
            "campaign": self.label,
            "n": snap.completed + snap.skipped,
            "total": snap.total,
            "total_exact": snap.total_exact,
            "pending": snap.pending,
            "outcomes": dict(snap.outcomes),
            "quarantined": snap.quarantined,
            "retries": snap.retries,
            "hangs": last.get("hangs", 0),
            "fallbacks": last.get("fallbacks", 0),
            "throughput": (self.sampler.ewma
                           if self.sampler.ewma is not None
                           else snap.throughput),
            "eta_s": snap.eta_s,
            "elapsed_s": snap.wall_s,
            "emulated_s": snap.emulated_s,
            "phases": dict(snap.phases),
            "workers": workers,
            "series": [sample.get("ewma", 0.0)
                       for sample in samples[-_SERIES_LENGTH:]],
            "alerts": self.alerts.active,
            "alert_history": list(self.alerts.history),
            "finished": False,
        }

    def close(self) -> None:
        """Final sample, then tear down exporter and sidecar writer."""
        try:
            self.poll(force=True)
        except Exception:  # pragma: no cover - teardown best-effort
            log.exception("final observability sample failed")
        if self.server is not None:
            self.server.close()
            self.server = None
        self.sampler.close()
