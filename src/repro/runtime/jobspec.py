"""Picklable campaign descriptions for the execution runtime.

A :class:`CampaignJobSpec` is everything a worker process needs to rebuild
one experiment class from scratch — the workload, the seeds and the
:class:`~repro.core.config.FaultLoadSpec` — without sharing any simulator
state with the parent.  Workers receive the spec (pickled through the job
queue), construct their own :class:`~repro.core.campaign.FadesCampaign`,
regenerate the exact same faultload the parent planned from, and run only
the fault indices they are handed.

Determinism contract
--------------------
Sharded execution must be outcome-identical to serial execution for the
same spec and seed.  Two derivations guarantee it:

* the faultload seed is fixed in the spec, so every process draws the
  identical fault list;
* the injector randomiser (used by indetermination faults, and consumed
  per cycle in oscillating mode) is re-seeded before *every* experiment
  from :func:`derive_fault_seed`, a pure function of the campaign seed
  and the fault index — so an experiment's outcome cannot depend on which
  worker runs it or on how many experiments ran before it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import FaultModel, generate_faultload, pool_size
from ..core.campaign import ExperimentResult, FadesCampaign
from ..core.classify import Outcome
from ..core.config import FaultLoadSpec
from ..core.faults import Fault
from ..core.timing_model import ExperimentCost
from ..errors import JournalError

#: Golden-run snapshot spacing used by the standard testbed (matches
#: :class:`repro.analysis.experiments.Evaluation`).
DEFAULT_CHECKPOINT_INTERVAL = 128


def derive_fault_seed(seed: int, index: int) -> int:
    """Per-experiment injector seed: pure function of campaign seed and
    fault index (order- and shard-independent)."""
    mixed = (seed & 0x7FFFFFFF) * 0x9E3779B1 + (index + 1) * 0x85EBCA6B
    return (mixed ^ 0xFADE5) & 0x7FFFFFFF


@dataclass(frozen=True)
class CampaignJobSpec:
    """One experiment class, self-contained and picklable.

    ``faultload_seed`` defaults to ``seed`` — the same convention as
    ``FadesCampaign.run(spec, seed=...)`` call sites use throughout the
    analysis layer.
    """

    spec: FaultLoadSpec
    values: Tuple[int, ...] = (9, 3, 12, 5)
    workload: str = "bubblesort"
    seed: int = 2006
    faultload_seed: Optional[int] = None
    checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL
    label: str = ""
    backend: str = "reference"
    #: Let :mod:`repro.sfa` resolve provably Silent faults statically
    #: and collapse equivalent faults onto one representative.
    prune_silent: bool = False
    #: Statistical campaign planning (:mod:`repro.faultload`).  The
    #: defaults describe the historical fixed-budget behaviour: uniform
    #: sampling, ``spec.count`` experiments, no stopping rule.
    strategy: str = "uniform"
    confidence: float = 0.95
    #: Target Wilson half-width; ``None`` disables early stopping.
    epsilon: Optional[float] = None
    #: Hard experiment cap for adaptive campaigns (``None`` -> count).
    budget: Optional[int] = None

    @classmethod
    def from_evaluation(cls, evaluation, spec: FaultLoadSpec,
                        faultload_seed: Optional[int] = None,
                        label: str = "") -> "CampaignJobSpec":
        """Describe one experiment class of an evaluation testbed."""
        return cls(spec=spec, values=tuple(evaluation.values),
                   seed=evaluation.seed, faultload_seed=faultload_seed,
                   label=label or spec.label(),
                   backend=getattr(evaluation, "backend", "reference"),
                   prune_silent=getattr(evaluation, "prune_silent",
                                        False),
                   strategy=getattr(evaluation, "strategy", "uniform"),
                   confidence=getattr(evaluation, "confidence", 0.95),
                   epsilon=getattr(evaluation, "epsilon", None),
                   budget=getattr(evaluation, "budget", None))

    def effective_faultload_seed(self) -> int:
        return self.seed if self.faultload_seed is None else \
            self.faultload_seed

    @property
    def adaptive(self) -> bool:
        """Whether this campaign uses the statistical planner at all
        (non-uniform sampling, a stopping rule, or an explicit budget).
        """
        return (self.strategy != "uniform" or self.epsilon is not None
                or self.budget is not None)

    def effective_budget(self) -> int:
        """Upper bound on the number of experiments this campaign runs."""
        return self.spec.count if self.budget is None else self.budget

    def display_label(self) -> str:
        return self.label or self.spec.label()

    # -- serialisation (journal headers) -------------------------------
    def to_dict(self) -> Dict:
        """JSON-compatible form, stable across sessions."""
        spec = self.spec
        data: Dict = {
            "spec": {
                "model": spec.model.value,
                "pool": spec.pool,
                "count": spec.count,
                "duration_range": list(spec.duration_range),
                "workload_cycles": spec.workload_cycles,
                "mem_addr_range": (list(spec.mem_addr_range)
                                   if spec.mem_addr_range else None),
                "magnitude_range_ns": list(spec.magnitude_range_ns),
                "mechanism": spec.mechanism,
                "oscillate": spec.oscillate,
                "lut_lines": spec.lut_lines,
            },
            "values": list(self.values),
            "workload": self.workload,
            "seed": self.seed,
            "faultload_seed": self.faultload_seed,
            "checkpoint_interval": self.checkpoint_interval,
            "label": self.label,
            "backend": self.backend,
        }
        if self.prune_silent:
            # Only serialised when set: journals written before the
            # static-analysis era must keep resuming byte-compatibly.
            data["prune_silent"] = True
        if self.adaptive:
            # Same rule for the statistical planner: a fixed-budget
            # uniform campaign serialises exactly as it always has.
            data["strategy"] = self.strategy
            data["confidence"] = self.confidence
            if self.epsilon is not None:
                data["epsilon"] = self.epsilon
            if self.budget is not None:
                data["budget"] = self.budget
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignJobSpec":
        try:
            raw = dict(data["spec"])
            spec = FaultLoadSpec(
                model=FaultModel(raw["model"]),
                pool=raw["pool"],
                count=int(raw["count"]),
                duration_range=tuple(raw["duration_range"]),
                workload_cycles=int(raw["workload_cycles"]),
                mem_addr_range=(tuple(raw["mem_addr_range"])
                                if raw.get("mem_addr_range") else None),
                magnitude_range_ns=tuple(raw["magnitude_range_ns"]),
                mechanism=raw.get("mechanism", ""),
                oscillate=bool(raw.get("oscillate", False)),
                lut_lines=bool(raw.get("lut_lines", False)),
            )
            return cls(spec=spec,
                       values=tuple(data["values"]),
                       workload=data.get("workload", "bubblesort"),
                       seed=int(data["seed"]),
                       faultload_seed=data.get("faultload_seed"),
                       checkpoint_interval=int(
                           data.get("checkpoint_interval",
                                    DEFAULT_CHECKPOINT_INTERVAL)),
                       label=data.get("label", ""),
                       backend=data.get("backend", "reference"),
                       prune_silent=bool(data.get("prune_silent", False)),
                       # Absent in pre-planner journals: fixed-budget
                       # uniform behaviour, exactly as recorded.
                       strategy=data.get("strategy", "uniform"),
                       confidence=float(data.get("confidence", 0.95)),
                       epsilon=(float(data["epsilon"])
                                if data.get("epsilon") is not None
                                else None),
                       budget=(int(data["budget"])
                               if data.get("budget") is not None
                               else None))
        except (KeyError, TypeError, ValueError) as error:
            raise JournalError(f"malformed job spec: {error}") from error

    def with_count(self, count: int) -> "CampaignJobSpec":
        return replace(self, spec=replace(self.spec, count=count))


def build_campaign(jobspec: CampaignJobSpec) -> FadesCampaign:
    """Construct this process's own campaign for a job spec.

    Mirrors ``Evaluation.fades`` exactly (same seed, same checkpoint
    interval) so engine results line up with the serial testbed.
    """
    from ..analysis.specfile import WORKLOADS  # local: avoid import cycle
    from ..core import build_fades
    from ..mc8051 import build_mc8051

    try:
        factory = WORKLOADS[jobspec.workload]
    except KeyError:
        raise JournalError(
            f"unknown workload {jobspec.workload!r}") from None
    workload = factory(list(jobspec.values))
    model = build_mc8051(workload.rom)
    return build_fades(model.netlist, seed=jobspec.seed,
                       checkpoint_interval=jobspec.checkpoint_interval,
                       backend=jobspec.backend,
                       prune_silent=jobspec.prune_silent)


class JobRunner:
    """Executes individual fault indices of one job spec.

    Each worker process owns exactly one runner; the engine's in-process
    path reuses the parent's campaign through the keyword arguments.
    """

    def __init__(self, jobspec: CampaignJobSpec,
                 campaign: Optional[FadesCampaign] = None,
                 faults: Optional[Sequence[Fault]] = None,
                 pool: Optional[int] = None):
        self.jobspec = jobspec
        self.campaign = campaign if campaign is not None \
            else build_campaign(jobspec)
        if faults is not None:
            # Lists are aliased, not copied: the engine's adaptive path
            # hands the runner a faultload that still grows as the
            # stopping controller extends the campaign.
            self.faults: List[Fault] = faults if isinstance(faults, list) \
                else list(faults)
        else:
            self.faults = self._regenerate_faults()
        self.pool = pool if pool is not None \
            else pool_size(jobspec.spec, self.campaign.locmap)

    def _regenerate_faults(self) -> List[Fault]:
        """Re-derive the faultload this process was not handed.

        Workers rebuild the exact sequence the parent planned from:
        the historical uniform draw for fixed campaigns, the planner's
        :class:`~repro.faultload.strata.FaultStream` (materialised out
        to the budget — fault descriptors are cheap, experiments are
        not) for adaptive ones.
        """
        jobspec = self.jobspec
        if not jobspec.adaptive:
            return generate_faultload(
                jobspec.spec, self.campaign.locmap,
                seed=jobspec.effective_faultload_seed(),
                routed_nets=self.campaign.impl.routing.is_routed)
        from ..faultload import FaultStream  # local: avoid import cycle
        stream = FaultStream(
            jobspec.spec, self.campaign.locmap,
            seed=jobspec.effective_faultload_seed(),
            routed_nets=self.campaign.impl.routing.is_routed,
            strategy=jobspec.strategy)
        return stream.ensure(jobspec.effective_budget())

    def run_index(self, index: int) -> Dict:
        """Run one experiment and return its journal record."""
        fault = self.faults[index]
        self.campaign.injector.rng.seed(
            derive_fault_seed(self.jobspec.seed, index))
        result = self.campaign.run_experiment(
            fault, self.jobspec.spec.workload_cycles, pool=self.pool,
            index=index)
        return record_from_result(index, result)

    def batch_size(self) -> int:
        """Experiments to hand to :meth:`run_indices` at a time.

        The compiled backend evaluates a whole lane batch per simulator
        pass, so shard-sized chunks should match its lane budget; the
        reference backend gains nothing from batching.
        """
        if getattr(self.campaign, "backend", "reference") == "compiled":
            from ..emu import lane_width
            return max(1, lane_width() - 1)
        return 1

    def run_indices(self, indices: Sequence[int],
                    progress: Optional[Callable[[], None]] = None
                    ) -> List[Dict]:
        """Run several experiments; records in *indices* order.

        Routes through the campaign's backend-aware batch path so the
        compiled backend can pack the shard into bit lanes; the injector
        re-seeding contract (see module docstring) holds either way.
        ``progress`` (if given) is called between experiments — the
        scheduler's workers hang their heartbeat on it so the watchdog
        can tell a slow shard from a hung one.
        """
        if self.batch_size() == 1:
            records = []
            for index in indices:
                records.append(self.run_index(index))
                if progress is not None:
                    progress()
            return records

        def reseed(index: int) -> None:
            self.campaign.injector.rng.seed(
                derive_fault_seed(self.jobspec.seed, index))

        faults = [self.faults[index] for index in indices]
        results = self.campaign.run_batch(
            faults, self.jobspec.spec.workload_cycles, pool=self.pool,
            indices=list(indices), reseed=reseed)
        if progress is not None:
            progress()
        return [record_from_result(index, result)
                for index, result in zip(indices, results)]


# ---------------------------------------------------------------------------
# Experiment <-> record conversion (the journal's unit of persistence)
# ---------------------------------------------------------------------------
def record_from_result(index: int, result: ExperimentResult) -> Dict:
    """Flatten one experiment into a JSON-compatible record."""
    cost = result.cost
    record = {
        "index": index,
        "outcome": result.outcome.value,
        "first_divergence": result.first_divergence,
        "cost": {
            "locate_s": cost.locate_s,
            "transfer_s": cost.transfer_s,
            "workload_s": cost.workload_s,
            "overhead_s": cost.overhead_s,
            "transactions": cost.transactions,
        },
    }
    # Static-analysis markers only appear when set, keeping emulated
    # records byte-identical to pre-static-analysis journals.
    if result.pruned:
        record["pruned"] = True
    if result.collapsed_from is not None:
        record["collapsed_from"] = result.collapsed_from
    if result.quarantined:
        record["quarantined"] = True
        if result.error is not None:
            record["error"] = result.error
    return record


def result_from_record(fault: Fault, record: Dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from its journal record."""
    try:
        cost = record.get("cost") or {}
        return ExperimentResult(
            fault=fault,
            outcome=Outcome(record["outcome"]),
            cost=ExperimentCost(
                locate_s=float(cost.get("locate_s", 0.0)),
                transfer_s=float(cost.get("transfer_s", 0.0)),
                workload_s=float(cost.get("workload_s", 0.0)),
                overhead_s=float(cost.get("overhead_s", 0.0)),
                transactions=int(cost.get("transactions", 0)),
            ),
            first_divergence=record.get("first_divergence"),
            pruned=bool(record.get("pruned", False)),
            collapsed_from=record.get("collapsed_from"),
            quarantined=bool(record.get("quarantined", False)),
            error=record.get("error"),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise JournalError(f"malformed record: {error}") from error
