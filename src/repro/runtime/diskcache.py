"""Opt-in on-disk caches with crash-safe writes and stale-lock recovery.

Setting ``REPRO_CACHE_DIR`` lets expensive derived artefacts — golden
traces (:mod:`repro.runtime.engine`) and generated compiled-backend
sources (:mod:`repro.emu.compiler`) — persist across processes.  The
cache is strictly an accelerator: every failure mode (unwritable
directory, torn entry, lock contention) degrades to recomputing the
artefact, never to wrong results.

Two crash-safety mechanisms back that promise:

* :func:`atomic_write_bytes` writes to a temporary sibling, fsyncs, and
  ``os.replace``\\ s it into place — a reader observes either the old
  entry or the new one, never a torn half-write, and a crash leaves at
  most an orphaned ``*.tmp.*`` file;
* :class:`CacheLock` is a ``mkdir``-based advisory lock whose holder
  records its pid: a waiter breaks the lock when the recorded owner is
  dead or the lock has outlived ``stale_after_s``, so a killed process
  can never wedge the cache for everyone after it.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Any, Optional, Union

from ..obs import metrics as obs_metrics
from ..obs.logsetup import get_logger

log = get_logger("repro.runtime.diskcache")

#: Environment variable naming the cache root; unset/empty disables all
#: on-disk caching.
ENV_VAR = "REPRO_CACHE_DIR"

_CACHE_OPS = obs_metrics.counter(
    "disk_cache_ops_total", "On-disk cache operations, by op and result.")
_LOCKS_BROKEN = obs_metrics.counter(
    "disk_cache_locks_broken_total",
    "Stale cache locks forcibly removed, by reason.")


def cache_dir() -> Optional[Path]:
    """The configured cache root (created on first use), or ``None``."""
    value = os.environ.get(ENV_VAR, "").strip()
    if not value:
        return None
    path = Path(value)
    try:
        path.mkdir(parents=True, exist_ok=True)
    except OSError as error:
        log.warning("cache dir %s unusable (%s); caching disabled",
                    path, error)
        return None
    return path


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write *data* to *path* via write-temp-then-rename.

    The temporary file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem atomic rename.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(target.parent),
                               prefix=target.name + ".tmp.")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    atomic_write_bytes(path, text.encode("utf-8"))


class CacheLock:
    """``mkdir``-based advisory lock guarding one cache entry.

    Used as a context manager.  The lock directory holds an ``owner``
    file recording the holder's pid and acquisition wall-clock time;
    a waiter breaks the lock when that pid is no longer alive or the
    lock is older than ``stale_after_s`` (a holder that survives past
    staleness was going to lose the entry to a concurrent writer
    anyway — ``os.replace`` keeps the entry itself consistent).
    """

    def __init__(self, path: Union[str, Path],
                 stale_after_s: float = 60.0,
                 timeout_s: float = 10.0,
                 poll_s: float = 0.05):
        self.path = Path(path)
        self.stale_after_s = stale_after_s
        self.timeout_s = timeout_s
        self.poll_s = poll_s

    # -- staleness ----------------------------------------------------
    def _owner(self) -> Optional[dict]:
        try:
            with open(self.path / "owner", encoding="utf-8") as handle:
                value = json.load(handle)
            return value if isinstance(value, dict) else None
        except (OSError, ValueError):
            return None

    def _stale_reason(self) -> Optional[str]:
        owner = self._owner()
        if owner is None:
            # Holder crashed between mkdir and writing the owner file;
            # judge by the directory's own age.
            try:
                age = time.time() - self.path.stat().st_mtime
            except OSError:
                return None  # lock vanished: not stale, just gone
            return "no-owner" if age > self.stale_after_s else None
        if time.time() - float(owner.get("time", 0.0)) > self.stale_after_s:
            return "expired"
        pid = int(owner.get("pid", 0))
        if pid > 0:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return "dead-owner"
            except (OSError, PermissionError):
                pass  # alive (or unknowable): respect the lock
        return None

    def _break(self, reason: str) -> None:
        log.warning("breaking stale cache lock %s (%s)", self.path, reason)
        _LOCKS_BROKEN.inc(reason=reason)
        shutil.rmtree(self.path, ignore_errors=True)

    # -- context manager ----------------------------------------------
    def __enter__(self) -> "CacheLock":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + self.timeout_s
        while True:
            try:
                os.mkdir(self.path)
            except FileExistsError:
                reason = self._stale_reason()
                if reason is not None:
                    self._break(reason)
                    continue
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"cache lock {self.path} still held after "
                        f"{self.timeout_s:.1f} s")
                time.sleep(self.poll_s)
                continue
            atomic_write_text(self.path / "owner",
                              json.dumps({"pid": os.getpid(),
                                          "time": time.time()}))
            return self

    def __exit__(self, *exc_info: object) -> None:
        shutil.rmtree(self.path, ignore_errors=True)


def load_json(path: Union[str, Path]) -> Optional[Any]:
    """Read one cache entry; ``None`` on miss.  A torn or otherwise
    unreadable entry is deleted and treated as a miss."""
    try:
        with open(path, encoding="utf-8") as handle:
            value = json.load(handle)
    except FileNotFoundError:
        _CACHE_OPS.inc(op="load", result="miss")
        return None
    except (OSError, ValueError) as error:
        _CACHE_OPS.inc(op="load", result="corrupt")
        log.warning("discarding unreadable cache entry %s (%s)",
                    path, error)
        try:
            os.unlink(path)
        except OSError:
            pass
        return None
    _CACHE_OPS.inc(op="load", result="hit")
    return value


def store_json(path: Union[str, Path], value: Any) -> bool:
    """Atomically persist one cache entry under its stale-guarded lock.

    Returns whether the store happened; cache-write failures are logged
    and swallowed (the cache is an accelerator, not a dependency).
    """
    target = Path(path)
    try:
        with CacheLock(Path(str(target) + ".lock")):
            atomic_write_text(target,
                              json.dumps(value, sort_keys=True))
    except (OSError, TimeoutError, TypeError, ValueError) as error:
        _CACHE_OPS.inc(op="store", result="error")
        log.warning("could not store cache entry %s (%s)", target, error)
        return False
    _CACHE_OPS.inc(op="store", result="ok")
    return True


def tuplify(value: Any) -> Any:
    """Recursively turn JSON lists back into the tuples the in-memory
    artefacts use (JSON has no tuple type)."""
    if isinstance(value, list):
        return tuple(tuplify(item) for item in value)
    return value
