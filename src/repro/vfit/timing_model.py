"""Execution-time model of the VFIT baseline.

VFIT "makes use of the simulator commands technique, resulting in very
similar execution times for any type and length of the studied fault
models.  The average execution time for the experiments was 21600 seconds"
for 3000 faults (paper, section 6.2) — i.e. 7.2 s per experiment of 1303
clock cycles on the selected 8051 model.

The mechanistic model: a VHDL simulator evaluates every model element every
clock cycle on the host CPU, so one experiment costs::

    seconds = cycles * elements * seconds_per_element_cycle + overhead

The default rate constant is calibrated from the paper's numbers assuming
a model of roughly 6000 evaluated elements (gates + state), i.e. a 2006-era
CPU doing ~1.1 million element-evaluations per second under a full-featured
VHDL simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class VfitTimingParams:
    """Cost constants of simulator-command fault injection."""

    #: Host seconds per (element x cycle): 7.2 s / (1303 cycles * 6000
    #: elements) from the paper's measurements, i.e. roughly 1.1 million
    #: element evaluations per second on a 2006-era CPU.
    seconds_per_element_cycle: float = 9.2e-7
    #: Per-experiment overhead: script generation, checkpointing, trace
    #: dumping and comparison.
    experiment_overhead_s: float = 0.15


@dataclass
class VfitExperimentCost:
    """Time breakdown of one VFIT experiment."""

    simulate_s: float = 0.0
    overhead_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.simulate_s + self.overhead_s


class VfitTimeModel:
    """Accumulates emulated VFIT campaign time."""

    def __init__(self, elements: int,
                 params: VfitTimingParams = VfitTimingParams()):
        self.elements = elements
        self.params = params
        self.costs: List[VfitExperimentCost] = []

    def record(self, cycles: int) -> VfitExperimentCost:
        """Record one experiment of *cycles* simulated clock cycles."""
        cost = VfitExperimentCost(
            simulate_s=(cycles * self.elements
                        * self.params.seconds_per_element_cycle),
            overhead_s=self.params.experiment_overhead_s)
        self.costs.append(cost)
        return cost

    @property
    def total_seconds(self) -> float:
        return sum(cost.total_s for cost in self.costs)

    def mean_seconds(self) -> float:
        if not self.costs:
            return 0.0
        return self.total_seconds / len(self.costs)

    def project(self, n_faults: int) -> float:
        """Extrapolate to a paper-scale campaign of *n_faults*."""
        return self.mean_seconds() * n_faults
