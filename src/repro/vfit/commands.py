"""Simulator-command fault injection — VFIT's mechanism.

VFIT is "a VHDL-based Fault Injection Tool" using "the simulator commands
technique" (paper, sections 6 and 6.2, reference [19]): faults are injected
by driving the VHDL simulator's command interface — deposit a register
value, force/release a signal — while the model executes.  Nothing about
the model or its implementation changes; only simulation state does.  That
is the defining contrast with FADES, which rewrites configuration memory.

The command layer below operates on the four-valued model simulator; the
indetermination model forces ``'X'`` (the VHDL way) rather than FADES's
randomised final level, which is one of the behavioural differences the
paper discusses when comparing Table 3 results.
"""

from __future__ import annotations

from typing import List

from ..errors import InjectionError, UnsupportedFaultError
from ..hdl import logic
from ..hdl.netlist import Netlist
from ..hdl.simulator import FourValuedSim
from ..core.faults import Fault, FaultModel, Target, TargetKind


class VfitCommands:
    """Command-level injection session on one model simulator."""

    def __init__(self, sim: FourValuedSim):
        self.sim = sim
        self.netlist = sim.netlist
        self.commands_issued = 0

    # ------------------------------------------------------------------
    def inject(self, fault: Fault) -> None:
        """Activate *fault* (called at its injection instant)."""
        model = fault.model
        target = fault.target
        if model is FaultModel.BITFLIP:
            if target.kind is TargetKind.FF:
                current = self.sim.ff_state()[target.index]
                self.sim.deposit_ff(target.index, logic.not4(current))
            elif target.kind is TargetKind.MEMORY_BIT:
                name = self.netlist.brams[target.index].name
                word = self.sim.mem_state(name)[target.addr]
                if word is None:
                    flipped = None  # unknown word stays unknown
                else:
                    flipped = word ^ (1 << target.bit)
                self.sim.deposit_mem(name, target.addr, flipped)
            else:
                raise InjectionError(
                    f"VFIT bit-flip cannot target {target.kind.value}")
        elif model is FaultModel.PULSE:
            if target.kind is not TargetKind.NET:
                raise InjectionError(
                    "VFIT pulses target HDL signal nets")
            self.sim.force_invert_net(target.index)
        elif model is FaultModel.INDETERMINATION:
            if target.kind is TargetKind.FF:
                self.sim.deposit_ff(target.index, logic.X)
                dff = self.netlist.dffs[target.index]
                self.sim._forced[dff.q] = logic.X
            elif target.kind is TargetKind.NET:
                self.sim._forced[target.index] = logic.X
            else:
                raise InjectionError(
                    "VFIT indetermination targets FFs or signal nets")
        elif model is FaultModel.DELAY:
            # Paper, section 6.3: "VFIT requires the model to specify the
            # delay of signals by means of generic clauses and the selected
            # model does not include any of them".
            raise UnsupportedFaultError(
                "VFIT cannot inject delay faults: the model carries no "
                "generic delay clauses")
        else:
            raise UnsupportedFaultError(
                f"VFIT does not implement the {model.value} model")
        self.commands_issued += 1

    def remove(self, fault: Fault) -> None:
        """Deactivate a transient fault after its duration."""
        target = fault.target
        if fault.model is FaultModel.PULSE:
            self.sim.release_invert_net(target.index)
        elif fault.model is FaultModel.INDETERMINATION:
            if target.kind is TargetKind.FF:
                dff = self.netlist.dffs[target.index]
                self.sim._forced.pop(dff.q, None)
            else:
                self.sim._forced.pop(target.index, None)
        self.commands_issued += 1

    # ------------------------------------------------------------------
    def ff_index_of(self, signal: str, bit: int) -> int:
        """Resolve an HDL signal bit to the flip-flop storing it."""
        nets = self.netlist.names.get(signal)
        if nets is None:
            raise InjectionError(f"no HDL signal {signal!r}")
        net = nets[bit]
        for index, dff in enumerate(self.netlist.dffs):
            if dff.q == net:
                return index
        raise InjectionError(
            f"signal {signal!r} bit {bit} is not a storage element")


def vfit_pool_targets(netlist: Netlist, pool: str,
                      mem_addr_range=None) -> List:
    """Enumerate VFIT's HDL-level location pool.

    Pools mirror :mod:`repro.core.config` but resolve against the *model*
    (signals, variables, processes) instead of the implementation:

    * ``'ffs'`` / ``'ffs:<unit>'`` — storage elements;
    * ``'memory:<name>'`` — memory words/bits;
    * ``'comb'`` / ``'comb:<unit>'`` — combinational signal nets.
    """
    parts = pool.split(":")
    kind = parts[0]
    if kind == "ffs":
        indices = [i for i, dff in enumerate(netlist.dffs)
                   if len(parts) == 1 or dff.unit == parts[1]]
        return [Target(TargetKind.FF, i) for i in indices]
    if kind == "memory":
        name = parts[1]
        for index, bram in enumerate(netlist.brams):
            if bram.name == name:
                lo, hi = mem_addr_range or (0, bram.depth)
                return [Target(TargetKind.MEMORY_BIT, index, addr=a, bit=b)
                        for a in range(lo, min(hi, bram.depth))
                        for b in range(bram.width)]
        raise InjectionError(f"no memory {name!r} in the model")
    if kind == "comb":
        unit = parts[1] if len(parts) > 1 else None
        nets = [gate.out for gate in netlist.gates
                if unit is None or gate.unit == unit]
        return [Target(TargetKind.NET, net) for net in nets]
    raise InjectionError(f"unknown VFIT pool {pool!r}")
