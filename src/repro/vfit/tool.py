"""VFIT campaign runner: model-level fault injection on the host simulator.

Mirrors :class:`~repro.core.campaign.FadesCampaign` so that the comparison
experiments (paper, table 3) run both tools over the same experiment
classes: same fault models, same duration bands, injection instants
uniformly distributed over the workload — but VFIT draws locations from the
*HDL model* (signals, storage elements, memory words) and injects with
simulator commands on the four-valued model simulator.
"""

from __future__ import annotations

import random
from dataclasses import field
from typing import List, Optional, Sequence

from ..core.campaign import CampaignResult, ExperimentResult
from ..core.classify import classify
from ..core.config import FaultLoadSpec
from ..core.faults import Fault
from ..core.timing_model import ExperimentCost
from ..errors import LocationError
from ..hdl.netlist import Netlist
from ..hdl.simulator import FourValuedSim
from ..hdl.trace import Trace
from .commands import VfitCommands, vfit_pool_targets
from .timing_model import VfitTimeModel, VfitTimingParams


def vfit_faultload(spec: FaultLoadSpec, netlist: Netlist,
                   seed: int = 0) -> List[Fault]:
    """Draw a faultload against the HDL model's location pools.

    Pool strings follow :class:`~repro.core.config.FaultLoadSpec`, with
    implementation-level pools translated to their model-level analogues
    (``luts:<unit>`` becomes the unit's combinational signals).
    """
    pool = spec.pool
    if pool.startswith("luts"):
        pool = "comb" + pool[len("luts"):]
    if pool.startswith("nets:comb"):
        pool = "comb" + pool[len("nets:comb"):]
    if pool == "nets:seq":
        pool = "ffs"
    rng = random.Random(seed)
    targets = vfit_pool_targets(netlist, pool, spec.mem_addr_range)
    if not targets:
        raise LocationError(f"VFIT pool {pool!r} is empty")
    faults: List[Fault] = []
    lo, hi = spec.duration_range
    for _ in range(spec.count):
        faults.append(Fault(
            model=spec.model,
            target=rng.choice(targets),
            start_cycle=rng.randrange(max(1, spec.workload_cycles)),
            duration_cycles=rng.uniform(lo, hi),
            phase=rng.random(),
            oscillate=spec.oscillate,
        ))
    return faults


class VfitCampaign:
    """Run simulator-command campaigns on one HDL model."""

    def __init__(self, netlist: Netlist, seed: int = 0,
                 timing_params: VfitTimingParams = VfitTimingParams(),
                 inputs: Optional[dict] = None):
        self.netlist = netlist
        self.inputs = dict(inputs or {})
        self.sim = FourValuedSim(netlist)
        self.rng = random.Random(seed)
        stats = netlist.stats()
        self.elements = stats["gates"] + stats["dffs"]
        self.time_model = VfitTimeModel(self.elements, timing_params)
        self._golden = {}

    # ------------------------------------------------------------------
    def golden_run(self, cycles: int) -> Trace:
        """Fault-free reference trace (cached per experiment length)."""
        cached = self._golden.get(cycles)
        if cached is not None:
            return cached
        sim = self.sim
        sim.reset()
        sim.release_all()
        trace = Trace(tuple(self.netlist.outputs))
        for cycle in range(cycles):
            trace.record(sim.step(self.inputs if cycle == 0 else None))
        trace.final_state = sim.state_snapshot()
        trace.cycles = cycles
        self._golden[cycles] = trace
        return trace

    # ------------------------------------------------------------------
    def run_experiment(self, fault: Fault, cycles: int) -> ExperimentResult:
        """One simulator-command experiment against the golden run."""
        sim = self.sim
        sim.reset()
        sim.release_all()
        commands = VfitCommands(sim)
        trace = Trace(tuple(self.netlist.outputs))
        if fault.duration_cycles >= 1.0:
            window = fault.whole_cycles
        else:
            window = 1 if fault.straddles_edge else 0
        start = min(fault.start_cycle, max(0, cycles - 1))
        removed = False
        injected = False
        for cycle in range(cycles):
            if cycle == start:
                commands.inject(fault)
                injected = True
                if window == 0 and fault.model.transient:
                    commands.remove(fault)
                    removed = True
            trace.record(sim.step(self.inputs if cycle == 0 else None))
            if (injected and not removed and fault.model.transient
                    and cycle >= start + window - 1):
                commands.remove(fault)
                removed = True
        if injected and not removed and fault.model.transient:
            commands.remove(fault)
        trace.final_state = sim.state_snapshot()
        trace.cycles = cycles

        golden = self.golden_run(cycles)
        vfit_cost = self.time_model.record(cycles)
        outcome = classify(golden, trace)
        cost = ExperimentCost(transfer_s=0.0, workload_s=vfit_cost.simulate_s,
                              overhead_s=vfit_cost.overhead_s)
        return ExperimentResult(
            fault=fault, outcome=outcome, cost=cost,
            first_divergence=trace.first_divergence(golden))

    # ------------------------------------------------------------------
    def run(self, spec: FaultLoadSpec,
            seed: Optional[int] = None) -> CampaignResult:
        """Generate and run a whole faultload; returns the aggregate."""
        faults = vfit_faultload(
            spec, self.netlist,
            seed=self.rng.randrange(2**31) if seed is None else seed)
        return self.run_faults(faults, spec.workload_cycles,
                               label=f"vfit:{spec.label()}")

    def run_faults(self, faults: Sequence[Fault], cycles: int,
                   label: str = "") -> CampaignResult:
        """Run a pre-generated fault list."""
        golden = self.golden_run(cycles)
        result = CampaignResult(spec_label=label, golden=golden)
        for fault in faults:
            result.experiments.append(self.run_experiment(fault, cycles))
        result.total_emulation_s = sum(
            e.cost.total_s for e in result.experiments)
        if result.experiments:
            result.mean_emulation_s = (result.total_emulation_s
                                       / len(result.experiments))
        return result
