"""VFIT baseline (S5): VHDL-simulator-command fault injection.

The comparison tool of the paper's evaluation (section 6): same fault
models and faultloads, but injected through simulator commands on the HDL
model, with host-CPU simulation cost — the technique FADES is measured
against in table 2 (speed-up) and table 3 (result agreement).
"""

from .commands import VfitCommands, vfit_pool_targets
from .timing_model import VfitTimeModel, VfitTimingParams
from .tool import VfitCampaign, vfit_faultload

__all__ = [
    "VfitCommands",
    "vfit_pool_targets",
    "VfitTimeModel",
    "VfitTimingParams",
    "VfitCampaign",
    "vfit_faultload",
]
